"""The declarative description of one simulated dining run.

A :class:`RunSpec` fully determines a run — topology, seed, delay and
fault models, transport policy, oracle, dining algorithm, workload, crash
schedule, and trace-sink mode.  It is plain data (strings, numbers,
mappings), so it serializes to JSON, pickles across worker processes, and
compares by value; the single canonical builder in
:mod:`repro.runtime.builder` turns it into a wired engine, and
:func:`repro.runtime.builder.execute` turns it into a
:class:`~repro.runtime.result.RunResult`.

Every former construction path — ``scenario.Scenario``,
``chaos.build_run``, ``experiments/common.build_system``, ad-hoc
benchmark fixtures — is now a thin producer or consumer of this type.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import networkx as nx

from repro import graphs
from repro.errors import ConfigurationError


def parse_graph(spec: str) -> nx.Graph:
    """Parse a graph spec: ``ring:5``, ``clique:4``, ``path:6``,
    ``star:4``, ``grid:2x3``, or ``pair:a,b``."""
    kind, _, arg = spec.partition(":")
    try:
        if kind == "ring":
            return graphs.ring(int(arg))
        if kind == "clique":
            return graphs.clique(int(arg))
        if kind == "path":
            return graphs.path(int(arg))
        if kind == "star":
            return graphs.star(int(arg))
        if kind == "grid":
            rows, cols = arg.split("x")
            return graphs.grid(int(rows), int(cols))
        if kind == "pair":
            a, b = arg.split(",")
            return graphs.pair_graph(a.strip(), b.strip())
    except (ValueError, TypeError) as exc:
        raise ConfigurationError(f"bad graph spec {spec!r}: {exc}") from exc
    raise ConfigurationError(f"unknown graph kind {kind!r}")


@dataclass
class RunSpec:
    """A declaratively-described dining run (pure data, fully picklable)."""

    name: str = "run"
    graph: str = "ring:4"
    algorithm: str = "wf-ewx"
    oracle: str = "hb"
    client: str = "eager:2"
    crashes: Mapping[str, float] = field(default_factory=dict)
    seed: int = 0
    gst: float = 120.0
    max_time: float = 2000.0
    grace: float = 120.0
    #: Link faults (docs/fault_model.md): per-message loss/duplication
    #: probabilities and an optional partition window
    #: ``{"side": [pids], "start": t0, "end": t1}``.
    drop: float = 0.0
    duplicate: float = 0.0
    partition: Optional[Mapping[str, Any]] = None
    #: Reliable transport over the faulty wire.  ``None`` = auto: installed
    #: exactly when link faults are configured, so algorithms keep their
    #: Section 4 channel assumptions.  ``False`` exposes raw faults to the
    #: algorithms (chaos/negative testing).  A mapping is passed through as
    #: :class:`~repro.sim.transport.RetransmitPolicy` keywords, e.g.
    #: ``{"rto_initial": 6.0, "rto_max": 45.0}``.
    transport: Optional[bool | Mapping[str, float]] = None
    #: Targeted delay adversary: ``{"kind"|"endpoint"|"tag_prefix": ...,
    #: "factor": f, "extra_max": m, "until": t}`` (see repro.sim.adversary).
    slow: Optional[Mapping[str, Any]] = None
    #: Trace sink mode (``full`` | ``ring:N`` | ``counters``): how much of
    #: the run's event history is retained for verdict checking; see
    #: :mod:`repro.sim.sinks` and docs/runtime.md.
    trace: str = "full"
    #: Record per-message send/deliver trace rows (verbose; off by default).
    record_messages: bool = False
    #: Detector-quality telemetry (:mod:`repro.obs`): convergence probes on
    #: the trace stream, metric snapshot on the result.  On by default; the
    #: probes are pure arithmetic and cost little.
    obs: bool = True

    def __post_init__(self) -> None:
        """Eager validation: a malformed spec fails at construction with a
        clear :class:`~repro.errors.ReproError`, not deep inside a worker
        process after the campaign has already fanned out."""
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigurationError(
                f"seed must be an int, got {self.seed!r}")
        if self.max_time <= 0:
            raise ConfigurationError(
                f"max_time must be positive, got {self.max_time}")
        if self.gst < 0:
            raise ConfigurationError(
                f"gst must be non-negative, got {self.gst}")
        if self.grace < 0:
            raise ConfigurationError(
                f"grace must be non-negative, got {self.grace}")
        for name in ("drop", "duplicate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability in [0, 1], got {value}")
        if self.oracle not in ("hb", "perfect"):
            raise ConfigurationError(
                f"unknown oracle kind {self.oracle!r} (use hb | perfect)")
        # Delegate trace-sink spec syntax to the sink factory so the
        # accepted grammar is declared exactly once.
        from repro.sim.sinks import make_sink

        make_sink(self.trace)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        unknown = set(data) - {f.name for f in cls.__dataclass_fields__.values()}
        if unknown:
            raise ConfigurationError(f"unknown scenario keys: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_json(cls, path: "str | pathlib.Path") -> "RunSpec":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))
