"""The declarative description of one simulated dining run.

A :class:`RunSpec` fully determines a run — topology, seed, delay and
fault models, transport policy, oracle, dining algorithm, workload, crash
schedule, and trace-sink mode.  It is plain data (strings, numbers,
mappings), so it serializes to JSON, pickles across worker processes, and
compares by value; the single canonical builder in
:mod:`repro.runtime.builder` turns it into a wired engine, and
:func:`repro.runtime.builder.execute` turns it into a
:class:`~repro.runtime.result.RunResult`.

Every former construction path — ``scenario.Scenario``,
``chaos.build_run``, ``experiments/common.build_system``, ad-hoc
benchmark fixtures — is now a thin producer or consumer of this type.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import networkx as nx

from repro import graphs
from repro.errors import ConfigurationError


def _parse_grid(arg: str) -> nx.Graph:
    rows, cols = arg.split("x")
    return graphs.grid(int(rows), int(cols))


def _parse_pair(arg: str) -> nx.Graph:
    a, b = arg.split(",")
    return graphs.pair_graph(a.strip(), b.strip())


def _parse_rgg(arg: str) -> nx.Graph:
    parts = arg.split(":")
    if len(parts) not in (2, 3):
        raise ValueError("expected n:radius[:seed]")
    n, radius = int(parts[0]), float(parts[1])
    seed = int(parts[2]) if len(parts) == 3 else 0
    return graphs.random_geometric(n, radius, seed)


def _parse_tree(arg: str) -> nx.Graph:
    parts = arg.split(":")
    if len(parts) not in (1, 2):
        raise ValueError("expected n[:arity]")
    n = int(parts[0])
    arity = int(parts[1]) if len(parts) == 2 else 2
    return graphs.cluster_tree(n, arity)


def _parse_rand(arg: str) -> nx.Graph:
    import numpy as np

    parts = arg.split(":")
    if len(parts) not in (2, 3):
        raise ValueError("expected n:p[:seed]")
    n, p = int(parts[0]), float(parts[1])
    seed = int(parts[2]) if len(parts) == 3 else 0
    return graphs.random_graph(n, p, np.random.default_rng(seed),
                               connect=False)


#: Graph-spec registry: kind -> (builder over the arg string, example spec).
#: The examples double as the error-path documentation — every unknown-kind
#: or malformed-arg message enumerates this table.
GRAPH_KINDS: dict[str, tuple[Any, str]] = {
    "ring": (lambda arg: graphs.ring(int(arg)), "ring:5"),
    "clique": (lambda arg: graphs.clique(int(arg)), "clique:4"),
    "path": (lambda arg: graphs.path(int(arg)), "path:6"),
    "star": (lambda arg: graphs.star(int(arg)), "star:4"),
    "grid": (_parse_grid, "grid:2x3"),
    "pair": (_parse_pair, "pair:a,b"),
    "rgg": (_parse_rgg, "rgg:100:0.18:7"),
    "tree": (_parse_tree, "tree:50:3"),
    "rand": (_parse_rand, "rand:40:0.1:1"),
}


def _graph_kind_help() -> str:
    return ", ".join(f"{kind} (e.g. {example})"
                     for kind, (_, example) in GRAPH_KINDS.items())


def parse_graph(spec: str) -> nx.Graph:
    """Parse a graph spec string into a conflict graph.

    Supported kinds: ``ring:5``, ``clique:4``, ``path:6``, ``star:4``,
    ``grid:2x3``, ``pair:a,b``, ``rgg:n:radius[:seed]`` (seeded random
    geometric), ``tree:n[:arity]`` (cluster tree), and ``rand:n:p[:seed]``
    (seeded Erdős–Rényi).  Seeds default to 0; tree arity defaults to 2.
    """
    kind, _, arg = spec.partition(":")
    try:
        builder, _ = GRAPH_KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown graph kind {kind!r} in {spec!r}; supported kinds: "
            f"{_graph_kind_help()}") from None
    try:
        return builder(arg)
    except ConfigurationError:
        raise
    except (ValueError, TypeError) as exc:
        _, example = GRAPH_KINDS[kind]
        raise ConfigurationError(
            f"bad graph spec {spec!r}: {exc} (expected e.g. {example!r}; "
            f"supported kinds: {_graph_kind_help()})") from exc


@dataclass
class RunSpec:
    """A declaratively-described dining run (pure data, fully picklable)."""

    name: str = "run"
    graph: str = "ring:4"
    algorithm: str = "wf-ewx"
    #: Deprecated spelling of the detector choice (``hb`` | ``perfect``).
    #: Kept for stored-spec compatibility; any non-default value raises a
    #: DeprecationWarning pointing at ``detector=`` and maps onto the
    #: registry (``hb`` → ``eventually_perfect``, ``perfect`` →
    #: ``perfect``).  New specs should leave it alone.
    oracle: str = "hb"
    client: str = "eager:2"
    crashes: Mapping[str, float] = field(default_factory=dict)
    seed: int = 0
    gst: float = 120.0
    max_time: float = 2000.0
    grace: float = 120.0
    #: Link faults (docs/fault_model.md): per-message loss/duplication
    #: probabilities and an optional partition window
    #: ``{"side": [pids], "start": t0, "end": t1}``.
    drop: float = 0.0
    duplicate: float = 0.0
    partition: Optional[Mapping[str, Any]] = None
    #: Reliable transport over the faulty wire.  ``None`` = auto: installed
    #: exactly when link faults are configured, so algorithms keep their
    #: Section 4 channel assumptions.  ``False`` exposes raw faults to the
    #: algorithms (chaos/negative testing).  A mapping is passed through as
    #: :class:`~repro.sim.transport.RetransmitPolicy` keywords, e.g.
    #: ``{"rto_initial": 6.0, "rto_max": 45.0}``.
    transport: Optional[bool | Mapping[str, float]] = None
    #: Targeted delay adversary: ``{"kind"|"endpoint"|"tag_prefix": ...,
    #: "factor": f, "extra_max": m, "until": t}`` (see repro.sim.adversary).
    slow: Optional[Mapping[str, Any]] = None
    #: Trace sink mode (``full`` | ``ring:N`` | ``counters``): how much of
    #: the run's event history is retained for verdict checking; see
    #: :mod:`repro.sim.sinks` and docs/runtime.md.
    trace: str = "full"
    #: Record per-message send/deliver trace rows (verbose; off by default).
    record_messages: bool = False
    #: Detector-quality telemetry (:mod:`repro.obs`): convergence probes on
    #: the trace stream, metric snapshot on the result.  On by default; the
    #: probes are pure arithmetic and cost little.
    obs: bool = True
    #: Span-level tracing (:mod:`repro.obs.spans`): materialize per-pair
    #: suspicion intervals, dining phases, crash points, and the
    #: convergence marker as typed spans on the result
    #: (``RunResult.spans``, ``repro.span.v1`` export).  Off by default —
    #: spans keep one tuple per interval for the whole run; see
    #: docs/observability.md.
    spans: bool = False
    #: Pair-selection policy for detector monitoring (``all`` |
    #: ``neighbors`` | ``neighbors:<k>``): which ordered (witness, subject)
    #: pairs the oracle monitors and the property checkers verify.  ``all``
    #: is the paper's full n·(n-1) square (bit-identical to historical
    #: runs); ``neighbors`` restricts monitoring to conflict-graph edges,
    #: making sparse n=100–1000 topologies tractable.  See
    #: docs/topologies.md.
    pairs: str = "all"
    #: Accept a disconnected conflict graph (components are monitored
    #: independently).  Off by default: a disconnected topology is usually
    #: an accident (an RGG radius set too low).
    allow_disconnected: bool = False
    #: Which failure detector drives the run, by registry name
    #: (:data:`repro.oracles.registry.REGISTRY`): ``eventually_perfect`` |
    #: ``eventually_strong`` | ``strong`` | ``perfect`` | ``trusting`` |
    #: ``omega`` | ``flawed_cm``.  The default is the historical heartbeat
    #: ◇P, bit-identical to pre-registry runs (golden traces pin it).
    detector: str = "eventually_perfect"
    #: Per-detector parameter overrides (e.g. ``{"initial_timeout": 20}``
    #: for ◇P, ``{"box": "deferred:150"}`` for ``flawed_cm``); unknown
    #: keys fail eagerly naming the accepted ones.  Defaults come from the
    #: registry entry.
    detector_params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Eager validation: a malformed spec fails at construction with a
        clear :class:`~repro.errors.ReproError`, not deep inside a worker
        process after the campaign has already fanned out."""
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigurationError(
                f"seed must be an int, got {self.seed!r}")
        if self.max_time <= 0:
            raise ConfigurationError(
                f"max_time must be positive, got {self.max_time}")
        if self.gst < 0:
            raise ConfigurationError(
                f"gst must be non-negative, got {self.gst}")
        if self.grace < 0:
            raise ConfigurationError(
                f"grace must be non-negative, got {self.grace}")
        for name in ("drop", "duplicate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability in [0, 1], got {value}")
        if self.oracle not in ("hb", "perfect"):
            raise ConfigurationError(
                f"unknown oracle kind {self.oracle!r} (use hb | perfect)")
        # Detector name/params are owned by the oracle registry; eager
        # validation here means an unknown detector or parameter fails at
        # spec construction with the full registry enumerated.
        from repro.oracles.registry import DEFAULT_DETECTOR, DetectorSpec

        if self.oracle != "hb":
            if self.detector != DEFAULT_DETECTOR or self.detector_params:
                raise ConfigurationError(
                    f"oracle={self.oracle!r} conflicts with "
                    f"detector={self.detector!r}; the oracle knob is "
                    "deprecated — set detector/detector_params only")
            import warnings

            warnings.warn(
                f"RunSpec.oracle={self.oracle!r} is deprecated; use "
                f"detector={'perfect' if self.oracle == 'perfect' else self.detector!r} "
                "(see repro.DetectorSpec and docs/detectors.md)",
                DeprecationWarning, stacklevel=3)
        DetectorSpec(self.detector, dict(self.detector_params))
        # Pair-selection grammar is owned by PairSelection.parse.
        from repro.core.extraction import PairSelection

        PairSelection.parse(self.pairs)
        # Delegate trace-sink spec syntax to the sink factory so the
        # accepted grammar is declared exactly once.
        from repro.sim.sinks import make_sink

        make_sink(self.trace)

    def detector_spec(self) -> "Any":
        """Resolve the spec's detector fields into a registry
        :class:`~repro.oracles.registry.DetectorSpec` (legacy ``oracle``
        values map through ``DetectorSpec.from_legacy_oracle``)."""
        from repro.oracles.registry import DetectorSpec

        if self.oracle != "hb":
            return DetectorSpec.from_legacy_oracle(self.oracle, seed=self.seed)
        return DetectorSpec(self.detector, dict(self.detector_params),
                            seed=self.seed)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        unknown = set(data) - {f.name for f in cls.__dataclass_fields__.values()}
        if unknown:
            raise ConfigurationError(f"unknown scenario keys: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_json(cls, path: "str | pathlib.Path") -> "RunSpec":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))
