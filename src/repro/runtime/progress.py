"""Live campaign progress: a stderr status line plus a heartbeat JSONL.

Long campaigns (hundreds of seeds, n=1000 topologies) used to run silent
until they finished.  :class:`ProgressReporter` plugs into the
``on_result`` hooks the executors already expose
(:meth:`repro.runtime.executor.SupervisedExecutor.map`,
:func:`repro.runtime.store.resumable_map`) and turns each landing result
into

* a throttled, self-overwriting **stderr line** — runs done/total (cache
  hits counted separately), cumulative events/sec, running
  wrongful-suspicion and convergence aggregates, and an ETA — emitted
  only when stderr is a TTY (or forced with ``--progress``), and
* an append-only **heartbeat JSONL** (``--progress-out``): one
  ``repro.progress.v1`` record per landed run, flushed immediately.
  Because the file is opened in append mode, a resumed campaign extends
  the same file — the trailing record's ``done``/``total``/``wall_time``
  is a liveness signal an external watcher can poll to tell a hung
  campaign from a slow one (docs/reliability.md).

Everything here writes to stderr or the heartbeat file only: stdout
stays byte-comparable between runs with and without progress reporting,
which is what the resume byte-identity suite pins.

Determinism note: progress output is inherently wall-clock-flavored
(rates, ETA, completion order under a pool) and is *not* part of any
determinism surface.  The run results it observes are untouched — the
reporter is a pure consumer.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Callable, Mapping, Optional, TextIO

#: Schema tag stamped on every heartbeat record.
PROGRESS_SCHEMA = "repro.progress.v1"

#: Minimum elapsed wall-clock (seconds) before rates and ETA are
#: reported.  A first result can land with ~0 elapsed time (cache hits
#: are served synchronously at load), and dividing by a near-zero
#: elapsed produces absurd rates and a bogus 0s ETA; below this floor
#: both are reported as unknown (``None``) instead.
MIN_RATE_ELAPSED = 1e-6


def progress_sample(value: Any) -> dict[str, Any]:
    """Flat ``{ok, events, convergence_time, wrongful_suspicions}`` view
    of one landed result.

    Duck-types everything the campaign executors hand back: chaos
    ``RunVerdict`` / ``StoredVerdict`` (via ``run_record()``), bare
    ``RunResult``-likes (via ``summary()``), and sweep row dicts (the
    ``record`` block).  Unknown shapes degrade to an empty sample rather
    than raising — progress reporting must never kill a campaign.
    """
    rec: Any = None
    if isinstance(value, Mapping):
        rec = value.get("record", value)
    elif hasattr(value, "run_record"):
        try:
            rec = value.run_record()
        except Exception:
            rec = None
    elif hasattr(value, "summary"):
        try:
            rec = {"summary": value.summary()}
        except Exception:
            rec = None
    if not isinstance(rec, Mapping):
        return {}
    summary = rec.get("summary") or {}
    verdict = rec.get("verdict") or {}
    ok = verdict.get("ok", summary.get("ok"))
    return {
        "ok": ok,
        "events": int(summary.get("events_processed") or 0),
        "convergence_time": summary.get("convergence_time"),
        "wrongful_suspicions": int(summary.get("wrongful_suspicions") or 0),
    }


class ProgressReporter:
    """Running campaign aggregates, rendered live.

    Wire :meth:`update` as the campaign's ``on_result`` hook (the
    ``cached`` flag distinguishes store-served results from fresh
    simulation); call :meth:`start` before the fan-out and
    :meth:`finish` in a ``finally`` so the heartbeat file is closed and
    the final line is terminated even on interrupt.

    ``live=None`` auto-detects: the stderr line is drawn only on a TTY,
    so redirected logs don't fill with carriage returns.  ``clock`` and
    ``wall_clock`` are injectable for deterministic tests.
    """

    def __init__(self, total: int, label: str = "campaign",
                 stream: Optional[TextIO] = None,
                 heartbeat_path: Optional[str] = None,
                 live: Optional[bool] = None,
                 min_interval: float = 0.25,
                 clock: Callable[[], float] = time.monotonic,
                 wall_clock: Callable[[], float] = time.time) -> None:
        self.total = int(total)
        self.label = label
        self.stream = sys.stderr if stream is None else stream
        self.heartbeat_path = heartbeat_path
        if live is None:
            isatty = getattr(self.stream, "isatty", None)
            live = bool(isatty()) if callable(isatty) else False
        self.live = live
        self.min_interval = float(min_interval)
        self._clock = clock
        self._wall_clock = wall_clock
        self.done = 0
        self.cached = 0
        self.failed = 0
        self.events = 0
        self.wrongful = 0
        self.converged = 0
        self._t0: Optional[float] = None
        self._last_draw: float = float("-inf")
        self._last_width = 0
        self._heartbeat: Optional[TextIO] = None
        self._finished = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Open the heartbeat file (append: resumed campaigns extend it)
        and start the rate clock."""
        self._t0 = self._clock()
        if self.heartbeat_path is not None and self._heartbeat is None:
            self._heartbeat = open(self.heartbeat_path, "a",
                                   encoding="utf-8")
        self._emit_heartbeat()
        self._draw(force=True)

    def update(self, index: int, value: Any, cached: bool = False) -> None:
        """Fold one landed result (``on_result`` contract: fires once per
        item; ``index`` identifies the run but order is completion order
        under a pool)."""
        if self._t0 is None:
            self.start()
        sample = progress_sample(value)
        self.done += 1
        if cached:
            self.cached += 1
        if sample.get("ok") is False:
            self.failed += 1
        self.events += sample.get("events", 0)
        self.wrongful += sample.get("wrongful_suspicions", 0)
        if sample.get("convergence_time") is not None:
            self.converged += 1
        self._emit_heartbeat()
        self._draw(force=self.done >= self.total)

    def finish(self) -> None:
        """Terminate the live line and close the heartbeat file.
        Idempotent; safe to call before :meth:`start`."""
        if self._finished:
            return
        self._finished = True
        if self._t0 is not None:
            self._draw(force=True)
            if self.live:
                self.stream.write("\n")
                self.stream.flush()
        if self._heartbeat is not None:
            self._heartbeat.close()
            self._heartbeat = None

    # -- aggregates ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The running aggregates as one heartbeat-record body."""
        elapsed = 0.0 if self._t0 is None else self._clock() - self._t0
        rate = self.done / elapsed if elapsed > MIN_RATE_ELAPSED else None
        events_per_sec = (self.events / elapsed
                          if elapsed > MIN_RATE_ELAPSED else None)
        eta = (None if not rate or self.done >= self.total
               else (self.total - self.done) / rate)
        return {
            "schema": PROGRESS_SCHEMA,
            "label": self.label,
            "done": self.done,
            "total": self.total,
            "cached": self.cached,
            "failed": self.failed,
            "events": self.events,
            "events_per_sec": (None if events_per_sec is None
                               else round(events_per_sec, 1)),
            "wrongful_suspicions": self.wrongful,
            "converged": self.converged,
            "unconverged": self.done - self.converged,
            "elapsed_seconds": round(elapsed, 3),
            "eta_seconds": None if eta is None else round(eta, 1),
            "wall_time": round(self._wall_clock(), 3),
        }

    # -- output --------------------------------------------------------------

    def _emit_heartbeat(self) -> None:
        if self._heartbeat is None:
            return
        self._heartbeat.write(
            json.dumps(self.snapshot(), sort_keys=True,
                       separators=(",", ":")) + "\n")
        self._heartbeat.flush()

    def render_line(self) -> str:
        """The one-line human progress summary (the stderr live line)."""
        snap = self.snapshot()
        bits = [f"{self.label}: {self.done}/{self.total} runs"]
        if self.cached:
            bits.append(f"{self.cached} cached")
        if self.failed:
            bits.append(f"{self.failed} FAILED")
        if snap["events_per_sec"] is not None:
            bits.append(f"{snap['events_per_sec']:,.0f} ev/s")
        bits.append(f"wrongful {self.wrongful}")
        bits.append(f"converged {self.converged}/{self.done}")
        if snap["eta_seconds"] is not None:
            bits.append(f"eta {snap['eta_seconds']:.0f}s")
        return " | ".join(bits)

    def _draw(self, force: bool = False) -> None:
        if not self.live:
            return
        now = self._clock()
        if not force and now - self._last_draw < self.min_interval:
            return
        self._last_draw = now
        line = self.render_line()
        pad = max(0, self._last_width - len(line))
        self._last_width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()
