"""Content-addressed result store: spec hash in, cached run payload out.

:func:`repro.runtime.builder.execute` is a pure function of its
:class:`~repro.runtime.spec.RunSpec`, so a run's outcome is fully named
by a canonical hash of the spec.  :class:`ResultStore` exploits that: a
JSONL-segment file keyed by :func:`spec_hash`, appended as results land,
so

* a re-submitted spec is a **cache hit** (no re-simulation), and
* a campaign interrupted mid-flight keeps every per-seed result it
  already computed — ``repro chaos --resume`` / ``repro sweep --resume``
  skip the stored seeds and produce aggregates byte-identical to an
  uninterrupted run.

Durability model: one JSON object per line, appended with flush+fsync
per put, last-write-wins on duplicate keys at load.  A crash mid-append
leaves at most one truncated final line, which load tolerates (the
payload of that line is simply lost and will be recomputed).  Payload
JSON preserves key order (no ``sort_keys``), so dicts round-trip with
their original insertion order and resumed aggregates serialize to the
same bytes as fresh ones.

:func:`resumable_map` is the generic checkpoint/resume harness over a
:class:`~repro.runtime.executor.SupervisedExecutor`: given per-task
store keys plus encode/decode hooks, it serves cached tasks from the
store and checkpoints fresh results the moment they complete — also on
the serial path, so an interrupted ``--workers 1`` campaign resumes too.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Any, Callable, Mapping, Optional, Sequence, TypeVar

from repro.errors import ConfigurationError, ExecutionError
from repro.obs.registry import MetricsRegistry
from repro.runtime.executor import SupervisedExecutor
from repro.runtime.spec import RunSpec

T = TypeVar("T")
R = TypeVar("R")

#: Schema tag stamped on every store line.
STORE_SCHEMA = "repro.store.v1"

#: Version salt mixed into every spec hash: bump when RunSpec semantics
#: change incompatibly, so stale stores miss instead of serving results
#: computed under different rules.
SPEC_HASH_VERSION = "repro.spec.v4"  # v4: detector registry fields

#: The salt default-detector specs keep hashing under.  A spec that does
#: not select a non-default detector is semantically identical to its
#: pre-registry form, so its hash must not move — stores written before
#: the detector fields existed stay cache hits.
_PRE_DETECTOR_VERSION = "repro.spec.v3"  # v3: spans knob


def canonical_spec(spec: RunSpec) -> dict[str, Any]:
    """The spec as a plain, deterministic dict (all fields, field order)."""
    return dataclasses.asdict(spec)


def spec_hash(spec: RunSpec) -> str:
    """Canonical content address of one run: sha256 over the versioned,
    key-sorted JSON encoding of every spec field.

    Two equal specs hash equally regardless of construction path
    (``RunSpec`` vs ``Scenario``, JSON vs kwargs), and the hash is stable
    across processes, machines, and worker counts.

    Compatibility: a spec on the default detector with no parameter
    overrides hashes exactly as it did before the registry fields existed
    (the detector fields are dropped and the pre-registry version salt is
    used), so stored results keyed under ``repro.spec.v3`` keep serving as
    cache hits.  Selecting any other detector — or overriding parameters —
    changes the simulated run, so those fields join the payload under the
    ``repro.spec.v4`` salt and the key moves.
    """
    fields = canonical_spec(spec)
    if (fields.get("detector") == "eventually_perfect"
            and not fields.get("detector_params")):
        fields.pop("detector", None)
        fields.pop("detector_params", None)
        version = _PRE_DETECTOR_VERSION
    else:
        version = SPEC_HASH_VERSION
    payload = {"version": version, "spec": fields}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultStore:
    """Append-only JSONL store mapping content keys to result payloads.

    ``get``/``put``/``__contains__`` are the whole surface; hit/miss/put
    counts publish into ``metrics`` (``store.hits``, ``store.misses``,
    ``store.puts``, ``store.corrupt_lines``) so cache behavior is
    observable — the acceptance path for resume verification.
    """

    def __init__(self, path: "str | pathlib.Path",
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.path = pathlib.Path(path)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._index: dict[str, dict[str, Any]] = {}
        if self.path.exists():
            if self.path.is_dir():
                raise ConfigurationError(
                    f"store path {self.path} is a directory")
            self._load()
        else:
            parent = self.path.parent
            if not parent.is_dir():
                raise ConfigurationError(
                    f"store directory {parent} does not exist")
            if not os.access(parent, os.W_OK):
                raise ConfigurationError(
                    f"store directory {parent} is not writable")

    def _load(self) -> None:
        text = self.path.read_text(encoding="utf-8")
        lines = text.splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                key = rec["key"]
                payload = rec["payload"]
            except (json.JSONDecodeError, KeyError, TypeError):
                if i == len(lines) - 1 and not text.endswith("\n"):
                    # Torn final append (crash mid-write): that one result
                    # is lost and will be recomputed; everything before it
                    # is intact.
                    self.metrics.counter("store.corrupt_lines").inc()
                    continue
                raise ExecutionError(
                    f"{self.path}:{i + 1}: corrupt store line (not a "
                    f"{STORE_SCHEMA} record); move the file aside or "
                    "restart without --store") from None
            self._index[key] = payload

    # -- the surface ---------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def items(self) -> "list[tuple[str, dict[str, Any]]]":
        """``(key, payload)`` pairs in append order (``repro store ls``);
        uncounted — inspection is not cache traffic."""
        return list(self._index.items())

    def get(self, key: str) -> Optional[dict[str, Any]]:
        """The payload stored under ``key``; counts a hit or a miss."""
        payload = self._index.get(key)
        if payload is None:
            self.metrics.counter("store.misses").inc()
            return None
        self.metrics.counter("store.hits").inc()
        return payload

    def put(self, key: str, payload: Mapping[str, Any]) -> None:
        """Durably append ``key -> payload`` (fsync per record).

        The whole record goes down in one ``os.write`` on an
        ``O_APPEND`` descriptor, so concurrent appends from separate
        processes (two campaigns sharing a store, a service restarting
        over a live file) land as whole lines instead of interleaving —
        POSIX serializes each append write at the file offset.  Pinned
        by ``tests/runtime/test_store_concurrent.py``.
        """
        line = json.dumps(
            {"schema": STORE_SCHEMA, "key": key, "payload": payload},
            separators=(",", ":"))
        data = (line + "\n").encode("utf-8")
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            while data:
                data = data[os.write(fd, data):]
            os.fsync(fd)
        finally:
            os.close(fd)
        self._index[key] = dict(payload)
        self.metrics.counter("store.puts").inc()

    def stats(self) -> dict[str, float]:
        """Flat counter view (``store.hits`` / ``.misses`` / ``.puts``)."""
        return dict(self.metrics.snapshot().counters)


def resumable_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    keys: Sequence[str],
    *,
    encode: Callable[[R], Mapping[str, Any]],
    decode: Callable[[dict[str, Any], int, T], R],
    store: Optional[ResultStore] = None,
    resume: bool = False,
    executor: Optional[SupervisedExecutor] = None,
    on_result: Optional[Callable[[int, R, bool], None]] = None,
) -> list[R]:
    """``[fn(x) for x in items]`` with content-addressed checkpointing.

    ``keys[i]`` is the content address of ``items[i]``.  With ``resume``,
    stored keys are served from ``store`` via ``decode(payload, i, item)``
    without executing; fresh results are checkpointed via ``encode`` the
    moment they land (completion order), so an interruption at any point
    loses at most the tasks still in flight.  Results come back in item
    order either way — and, because every task is a pure function of its
    item, a resumed map returns exactly what an uninterrupted one would.

    ``on_result(index, value, cached)`` fires once per item as it lands:
    at load for cache hits (``cached=True``), in completion order for
    fresh results — the hook live progress reporting plugs into.
    """
    if len(keys) != len(items):
        raise ConfigurationError(
            f"got {len(keys)} keys for {len(items)} items")
    if resume and store is None:
        raise ConfigurationError("resume requires a result store")
    results: dict[int, R] = {}
    todo: list[int] = []
    for i, key in enumerate(keys):
        payload = store.get(key) if (resume and store is not None) else None
        if payload is not None:
            results[i] = decode(payload, i, items[i])
            if on_result is not None:
                on_result(i, results[i], True)
        else:
            todo.append(i)

    def checkpoint(pos: int, value: R) -> None:
        index = todo[pos]
        results[index] = value
        if store is not None:
            store.put(keys[index], dict(encode(value)))
        if on_result is not None:
            on_result(index, value, False)

    executor = executor or SupervisedExecutor(workers=1)
    executor.map(fn, [items[i] for i in todo], on_result=checkpoint)
    return [results[i] for i in range(len(items))]
