"""The run-construction runtime: one contract, ``RunSpec → RunResult``.

This package is the single place a simulated dining run is described,
wired, executed, and judged:

* :class:`~repro.runtime.spec.RunSpec` — declarative, picklable
  description of one run (topology, seed, fault/delay models, transport,
  oracle, algorithm, workload, crash schedule, trace-sink mode);
* :mod:`~repro.runtime.builder` — the canonical builder
  (:func:`~repro.runtime.builder.build_system`,
  :func:`~repro.runtime.builder.instantiate`,
  :func:`~repro.runtime.builder.execute`) that every former wiring path
  (``scenario``, ``chaos``, ``experiments/common``, benchmarks) now
  delegates to;
* :class:`~repro.runtime.result.RunResult` — the uniform outcome envelope
  (verdicts, metrics, trace handle + sink mode);
* :class:`~repro.runtime.executor.ParallelExecutor` — deterministic
  multi-core fan-out of spec lists (``--workers N`` on the CLI), backed
  by the fault-tolerant
  :class:`~repro.runtime.executor.SupervisedExecutor` (per-task
  timeouts, crashed-worker detection, seeded backoff retry, graceful
  serial degradation);
* :class:`~repro.runtime.store.ResultStore` /
  :func:`~repro.runtime.store.spec_hash` — content-addressed result
  caching and campaign checkpoint/resume (``--store`` / ``--resume``);
* :func:`~repro.runtime.seeds.fanout_seeds` — stable campaign seed
  derivation;
* :class:`~repro.runtime.progress.ProgressReporter` — live stderr
  progress line + append-only heartbeat JSONL for long campaigns
  (``--progress`` / ``--progress-out``).

See docs/runtime.md for the architecture walkthrough and
docs/reliability.md for the supervision / checkpoint-resume layer.
"""

from repro.runtime.builder import (
    INSTANCE,
    BuiltRun,
    System,
    build_client,
    build_dining,
    build_system,
    execute,
    instantiate,
    justify_violations,
)
from repro.runtime.executor import (
    ParallelExecutor,
    RetryPolicy,
    SupervisedExecutor,
    mp_context,
)
from repro.runtime.progress import (
    PROGRESS_SCHEMA,
    ProgressReporter,
    progress_sample,
)
from repro.runtime.result import RunResult
from repro.runtime.seeds import fanout_seeds
from repro.runtime.spec import RunSpec, parse_graph
from repro.runtime.store import ResultStore, resumable_map, spec_hash

__all__ = [
    "INSTANCE",
    "BuiltRun",
    "PROGRESS_SCHEMA",
    "ParallelExecutor",
    "ProgressReporter",
    "ResultStore",
    "RetryPolicy",
    "RunResult",
    "RunSpec",
    "SupervisedExecutor",
    "System",
    "build_client",
    "build_dining",
    "build_system",
    "execute",
    "fanout_seeds",
    "instantiate",
    "justify_violations",
    "mp_context",
    "parse_graph",
    "progress_sample",
    "resumable_map",
    "spec_hash",
]
