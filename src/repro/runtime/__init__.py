"""The run-construction runtime: one contract, ``RunSpec → RunResult``.

This package is the single place a simulated dining run is described,
wired, executed, and judged:

* :class:`~repro.runtime.spec.RunSpec` — declarative, picklable
  description of one run (topology, seed, fault/delay models, transport,
  oracle, algorithm, workload, crash schedule, trace-sink mode);
* :mod:`~repro.runtime.builder` — the canonical builder
  (:func:`~repro.runtime.builder.build_system`,
  :func:`~repro.runtime.builder.instantiate`,
  :func:`~repro.runtime.builder.execute`) that every former wiring path
  (``scenario``, ``chaos``, ``experiments/common``, benchmarks) now
  delegates to;
* :class:`~repro.runtime.result.RunResult` — the uniform outcome envelope
  (verdicts, metrics, trace handle + sink mode);
* :class:`~repro.runtime.executor.ParallelExecutor` — deterministic
  multi-core fan-out of spec lists (``--workers N`` on the CLI);
* :func:`~repro.runtime.seeds.fanout_seeds` — stable campaign seed
  derivation.

See docs/runtime.md for the architecture walkthrough.
"""

from repro.runtime.builder import (
    INSTANCE,
    BuiltRun,
    System,
    build_client,
    build_dining,
    build_system,
    execute,
    instantiate,
    justify_violations,
)
from repro.runtime.executor import ParallelExecutor
from repro.runtime.result import RunResult
from repro.runtime.seeds import fanout_seeds
from repro.runtime.spec import RunSpec, parse_graph

__all__ = [
    "INSTANCE",
    "BuiltRun",
    "ParallelExecutor",
    "RunResult",
    "RunSpec",
    "System",
    "build_client",
    "build_dining",
    "build_system",
    "execute",
    "fanout_seeds",
    "instantiate",
    "justify_violations",
    "parse_graph",
]
