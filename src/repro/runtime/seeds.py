"""Deterministic seed fanout for multi-run campaigns.

One base seed names a whole campaign; each run's seed derives from it
through :func:`numpy.random.SeedSequence`, so run N of base seed S is the
same run on every machine, every code version, and every worker count.
"""

from __future__ import annotations

import numpy as np


def fanout_seeds(base_seed: int, n: int) -> list[int]:
    """Derive ``n`` independent 32-bit run seeds from one base seed.

    Shared by ``repro sweep`` and ``repro chaos``: the fanout is stable
    across code versions (``SeedSequence`` keying) and prefix-stable in
    ``n``, so campaign N of base seed S always names the same run.
    Distinct base seeds yield non-overlapping child-seed streams (see the
    collision test in ``tests/runtime/test_seeds.py``).
    """
    if n <= 0:
        return []
    state = np.random.SeedSequence(int(base_seed)).generate_state(n)
    return [int(s) for s in state]
