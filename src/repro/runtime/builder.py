"""The one canonical builder: ``RunSpec`` → wired engine → ``RunResult``.

Historically four places wired Engine + Network + oracles + dining stacks
by hand, each slightly differently (``scenario.Scenario``,
``chaos.build_run``, ``experiments/common.build_system``, benchmark
fixtures).  All of that construction now lives here:

* :func:`build_system` — engine + per-process box oracle + suspicion
  provider (the substrate experiments attach their own instances to);
* :func:`instantiate` — the full declarative path: substrate + dining
  algorithm + per-process workload clients from a :class:`RunSpec`;
* :func:`execute` — instantiate, run to the horizon, and judge: returns
  the :class:`~repro.runtime.result.RunResult` envelope.

``execute`` is a pure function of its spec (all randomness flows from
``spec.seed``), which is what lets the
:class:`~repro.runtime.executor.ParallelExecutor` fan specs out over
worker processes with bit-identical per-seed results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

import networkx as nx

from repro.core.extraction import PairSelection
from repro.dining.base import DiningInstance, SuspicionProvider
from repro.dining.client import EagerClient, PeriodicClient
from repro.dining.deferred import DeferredExclusionDining
from repro.dining.fair_wrapper import FairDining
from repro.dining.fairness import measure_fairness
from repro.dining.hygienic import HygienicDining
from repro.dining.manager import ManagerDining
from repro.dining.spec import check_exclusion, check_wait_freedom, state_series
from repro.dining.wf_ewx import WaitFreeEWXDining
from repro.errors import ConfigurationError, SimulationError
from repro.graphs import validate_conflict_graph
from repro.oracles.properties import (
    DetectorAssumptions,
    check_detector_properties,
    suspected_at,
)
from repro.oracles.registry import (
    BOX_LABEL,
    DetectorSpec,
    InstallContext,
    install_detector,
)
from repro.runtime.result import RunResult
from repro.runtime.spec import RunSpec, parse_graph
from repro.sim import adversary
from repro.sim.engine import Engine, SimConfig
from repro.sim.faults import CrashSchedule
from repro.sim.link_faults import LinkFaultModel, Partition
from repro.sim.metrics import collect_metrics
from repro.sim.network import DelayModel, PartialSynchronyDelays
from repro.sim.transport import ReliableTransport, RetransmitPolicy
from repro.types import DinerState, ProcessId, Time

#: Dining-instance id used by every declarative run (trace checkers key
#: state rows by it).
INSTANCE = "SCENARIO"


@dataclass
class System:
    """A built simulation: engine plus the box-internal oracle plumbing."""

    engine: Engine
    pids: list[ProcessId]
    schedule: CrashSchedule
    #: ``pid ->`` the dining-facing detector (an
    #: :class:`~repro.oracles.base.OracleModule` or an extraction facade —
    #: anything with the ``suspected(q)`` query API).
    box_modules: dict[ProcessId, Any]
    provider: SuspicionProvider
    transport: "ReliableTransport | None" = None
    #: The ``detector=`` label the dining-facing ``"suspect"`` trace rows
    #: carry (``boxfd`` for native modules; ``omega`` / ``flawed`` for the
    #: derived ones).
    detector_label: str = BOX_LABEL
    #: The property battery this run's detector claims — what ``execute``
    #: judges the trace against.
    assumptions: DetectorAssumptions = field(
        default_factory=DetectorAssumptions)


def build_system(
    pids: Sequence[ProcessId],
    seed: int,
    gst: Time = 150.0,
    max_time: Time = 3000.0,
    crash: CrashSchedule | None = None,
    delta: Time = 1.5,
    pre_gst_max: Time = 30.0,
    heartbeat_period: int = 4,
    initial_timeout: int = 10,
    oracle: str = "hb",
    delay_model: "DelayModel | None" = None,
    fault_model: "LinkFaultModel | None" = None,
    transport: "bool | RetransmitPolicy" = False,
    trace_sink: str = "full",
    record_messages: bool = False,
    obs: bool = True,
    spans: bool = False,
    peers_of: Mapping[ProcessId, Sequence[ProcessId]] | None = None,
    detector: "DetectorSpec | str | None" = None,
) -> System:
    """Engine + per-process box-internal oracle + the suspicion provider
    dining boxes use.

    ``detector`` selects the oracle from the registry
    (:data:`repro.oracles.registry.REGISTRY`) — a :class:`DetectorSpec`, a
    bare registry name, or ``None`` to map the legacy ``oracle`` knob
    (``"hb"`` heartbeat ◇P with this function's ``heartbeat_period`` /
    ``initial_timeout``, or the ``"perfect"`` P substrate).
    ``delay_model`` overrides the default GST channel model (e.g. to wrap
    it in adversarial :class:`~repro.sim.adversary.TargetedDelays`).
    ``fault_model`` makes the wire fair-lossy; pass ``transport=True`` (or
    a :class:`~repro.sim.transport.RetransmitPolicy`) to restore reliable
    channels over it, so algorithms keep their Section 4 assumptions.
    ``trace_sink`` bounds trace memory (``full`` | ``ring:N`` |
    ``counters`` — see :mod:`repro.sim.sinks`).  ``peers_of`` restricts
    each process's oracle module to an explicit peer list
    (conflict-graph-local monitoring); default is all-to-all.
    """
    if detector is None:
        spec = DetectorSpec.from_legacy_oracle(
            oracle, heartbeat_period=heartbeat_period,
            initial_timeout=initial_timeout, seed=seed)
    elif isinstance(detector, str):
        spec = DetectorSpec(detector, seed=seed)
    else:
        spec = detector
    schedule = crash or CrashSchedule.none()
    engine = Engine(
        SimConfig(seed=seed, max_time=max_time, trace_sink=trace_sink,
                  record_messages=record_messages, obs=obs, spans=spans),
        delay_model=delay_model or PartialSynchronyDelays(
            gst=gst, delta=delta, pre_gst_max=pre_gst_max),
        crash_schedule=schedule,
        fault_model=fault_model,
    )
    installed: ReliableTransport | None = None
    if transport:
        policy = transport if isinstance(transport, RetransmitPolicy) else None
        installed = ReliableTransport(policy).install(engine)
    for pid in pids:
        engine.add_process(pid)
    modules = install_detector(spec, InstallContext(
        engine=engine, pids=list(pids), schedule=schedule,
        peers_of=peers_of, seed=seed))

    def provider(pid: ProcessId):
        module = modules[pid]
        return lambda q: module.suspected(q)

    entry = spec.entry
    return System(engine=engine, pids=list(pids), schedule=schedule,
                  box_modules=modules, provider=provider,
                  transport=installed, detector_label=entry.label,
                  assumptions=entry.assumptions)


# -- declarative pieces -------------------------------------------------------


def build_dining(algorithm: str, graph: nx.Graph, system: System,
                 instance_id: str = INSTANCE) -> DiningInstance:
    """The dining stack named by an algorithm spec, bound to the system's
    suspicion provider: ``wf-ewx`` | ``hygienic`` | ``deferred[:horizon]``
    | ``manager`` | ``fair:<k>``."""
    algo, _, arg = algorithm.partition(":")
    if algo == "wf-ewx":
        return WaitFreeEWXDining(instance_id, graph, system.provider)
    if algo == "hygienic":
        return HygienicDining(instance_id, graph)
    if algo == "deferred":
        horizon = float(arg) if arg else 150.0
        return DeferredExclusionDining(instance_id, graph, system.provider,
                                       mistake_horizon=horizon)
    if algo == "manager":
        return ManagerDining(instance_id, graph, system.provider)
    if algo == "fair":
        k = int(arg) if arg else 2
        inner = lambda iid, g: WaitFreeEWXDining(iid, g,  # noqa: E731
                                                 system.provider)
        return FairDining(instance_id, graph, inner, system.provider, k=k)
    raise ConfigurationError(f"unknown algorithm {algorithm!r}")


def build_client(client: str, pid: ProcessId, diner, engine: Engine):
    """The workload component named by a client spec:
    ``eager:<steps>`` | ``periodic``."""
    kind, _, arg = client.partition(":")
    if kind == "eager":
        steps = int(arg) if arg else 2
        return EagerClient("client", diner, eat_steps=steps)
    if kind == "periodic":
        return PeriodicClient("client", diner,
                              rng=engine.rng.stream(f"client:{pid}"))
    raise ConfigurationError(f"unknown client kind {client!r}")


def build_fault_model(spec: RunSpec,
                      pids: Sequence[ProcessId]) -> Optional[LinkFaultModel]:
    """Link-fault model from the spec's drop/duplicate/partition knobs."""
    partitions = []
    if spec.partition is not None:
        part = dict(spec.partition)
        unknown = set(part) - {"side", "start", "end"}
        if unknown:
            raise ConfigurationError(
                f"unknown partition keys: {sorted(unknown)}")
        side = set(part.get("side", ()))
        bad = side - set(pids)
        if bad:
            raise ConfigurationError(
                f"partition side names unknown processes: {sorted(bad)}")
        partitions.append(Partition.of(side, float(part["start"]),
                                       float(part["end"])))
    if not (spec.drop or spec.duplicate or partitions):
        return None
    return LinkFaultModel(drop=spec.drop, duplicate=spec.duplicate,
                          partitions=partitions)


def build_delay_model(spec: RunSpec) -> DelayModel:
    """The channel model, wrapped in a targeted adversary if ``slow``."""
    # Same channel constants build_system would pick on its own, so a
    # spec with no adversary behaves exactly as before.
    base = PartialSynchronyDelays(gst=spec.gst, delta=1.5, pre_gst_max=30.0)
    if spec.slow is None:
        return base
    slow = dict(spec.slow)
    preds = []
    if "kind" in slow:
        preds.append(adversary.by_kind(slow.pop("kind")))
    if "endpoint" in slow:
        preds.append(adversary.by_endpoint(slow.pop("endpoint")))
    if "tag_prefix" in slow:
        preds.append(adversary.by_tag_prefix(slow.pop("tag_prefix")))
    if not preds:
        raise ConfigurationError(
            "slow needs a kind/endpoint/tag_prefix selector")
    until = slow.pop("until", None)
    rule = adversary.DelayRule(
        predicate=lambda m: all(p(m) for p in preds),
        factor=float(slow.pop("factor", 1.0)),
        extra_max=float(slow.pop("extra_max", 0.0)),
        until=None if until is None else float(until),
    )
    if slow:
        raise ConfigurationError(f"unknown slow keys: {sorted(slow)}")
    return adversary.TargetedDelays(base, [rule])


# -- the full declarative path ------------------------------------------------


@dataclass
class BuiltRun:
    """A fully wired, not-yet-executed run."""

    spec: RunSpec
    graph: nx.Graph
    system: System
    instance: DiningInstance
    diners: Mapping[ProcessId, Any] = field(default_factory=dict)
    #: The ordered (owner, target) monitoring relation when the spec's
    #: pair selection is local; ``None`` means all-to-all (``pairs=all``).
    monitors: "list[tuple[ProcessId, ProcessId]] | None" = None

    @property
    def engine(self) -> Engine:
        return self.system.engine


def instantiate(spec: RunSpec) -> BuiltRun:
    """Wire engine, oracle substrate, dining stack, and workload clients
    for ``spec`` — without running anything."""
    graph = parse_graph(spec.graph)
    validate_conflict_graph(graph,
                            allow_disconnected=spec.allow_disconnected)
    pids = sorted(graph.nodes)
    bad = set(spec.crashes) - set(pids)
    if bad:
        raise ConfigurationError(f"crashes name unknown processes: {bad}")
    selection = PairSelection.parse(spec.pairs)
    # pairs=all leaves the historical all-to-all construction untouched
    # (golden traces pin it bit-for-bit); local selections restrict each
    # oracle module to its conflict-graph peers.
    peers_of = None if selection.is_all else selection.peers_map(pids, graph)
    monitors = (None if selection.is_all
                else [(p, q) for p in pids for q in peers_of[p]])
    fault_model = build_fault_model(spec, pids)
    use_transport: Any = (spec.transport if spec.transport is not None
                          else fault_model is not None)
    if isinstance(use_transport, Mapping):
        use_transport = RetransmitPolicy(
            **{k: float(v) for k, v in use_transport.items()})
    system = build_system(
        pids, seed=spec.seed, gst=spec.gst, max_time=spec.max_time,
        crash=CrashSchedule(dict(spec.crashes)),
        detector=spec.detector_spec(),
        delay_model=build_delay_model(spec), fault_model=fault_model,
        transport=use_transport, trace_sink=spec.trace,
        record_messages=spec.record_messages, obs=spec.obs,
        spans=spec.spans, peers_of=peers_of,
    )
    instance = build_dining(spec.algorithm, graph, system)
    diners = instance.attach(system.engine)
    for pid in pids:
        system.engine.process(pid).add_component(
            build_client(spec.client, pid, diners[pid], system.engine))
    # Cost-visibility counters (repro report): how many ordered pairs the
    # oracle actually monitors, and how many dining instances run.
    n_pairs = (len(pids) * (len(pids) - 1) if monitors is None
               else len(monitors))
    registry = system.engine.registry
    registry.counter("monitor.pairs_monitored").inc(n_pairs)
    registry.counter("dining.instances").inc(1)
    return BuiltRun(spec=spec, graph=graph, system=system,
                    instance=instance, diners=diners, monitors=monitors)


def _violation_justified(trace, violation, detector: str = BOX_LABEL) -> bool:
    """Did either endpoint's current eating session begin under suspicion
    of the other?  (The ◇WX mechanism: simultaneous eating is only ever
    enabled by an oracle mistake.)
    """
    for eater, peer in ((violation.u, violation.v), (violation.v, violation.u)):
        begins = [t for t, s in state_series(trace, INSTANCE, eater)
                  if s == DinerState.EATING.value and t <= violation.start]
        if begins and suspected_at(trace, eater, peer, max(begins),
                                   detector=detector):
            return True
    return False


def justify_violations(trace, violations, detector: str = BOX_LABEL) -> bool:
    """Check every exclusion violation is oracle-justified.

    Fails loudly rather than silently mis-judging on truncated traces: a
    ring/counters sink may have evicted the very state/suspect rows the
    justification hinges on, and an "unjustified violation" verdict built
    on missing evidence would point at the dining layer for a bookkeeping
    artifact.
    """
    if not violations:
        return True
    if trace.truncated:
        raise SimulationError(
            f"cannot judge {len(violations)} exclusion violation(s): trace "
            f"sink {trace.mode!r} evicted {trace.evicted} of "
            f"{trace.total_recorded} records, so session-start/suspicion "
            "evidence may be gone — rerun with trace='full'"
        )
    return all(_violation_justified(trace, v, detector) for v in violations)


def execute(spec: RunSpec, check: Optional[bool] = None) -> RunResult:
    """Build and run ``spec`` to its horizon, then judge it.

    ``check=None`` (default) runs the invariant battery exactly when the
    trace sink retains rows (``counters`` runs are metrics-only; their
    verdict fields stay ``None`` and ``result.checked`` is False).
    """
    from repro.runtime.store import spec_hash

    built = instantiate(spec)
    eng = built.engine
    eng.run()
    if check is None:
        check = eng.trace.mode != "counters"
    # One snapshot backs both views: collect_metrics publishes the sim.*
    # gauges, finalizes probes, and freezes the registry once.
    metrics = collect_metrics(eng)
    result = RunResult(
        name=spec.name,
        seed=spec.seed,
        end_time=eng.now,
        metrics=metrics,
        obs=metrics.snapshot if spec.obs else None,
        trace_mode=eng.trace.mode,
        trace_evicted=eng.trace.evicted,
        trace=eng.trace,
        spec_key=spec_hash(spec),
        spans=(None if eng.span_probe is None
               else eng.span_probe.finalize(eng.now)),
    )
    if not check:
        return result
    pids = built.system.pids
    schedule = built.system.schedule
    exclusion = check_exclusion(eng.trace, built.graph, INSTANCE,
                                schedule, eng.now)
    result.wait_freedom = check_wait_freedom(eng.trace, built.graph, INSTANCE,
                                             schedule, eng.now,
                                             grace=spec.grace)
    result.exclusion = exclusion
    result.fairness = measure_fairness(eng.trace, built.graph, INSTANCE,
                                       eng.now, schedule)
    # Under local pair selection only the monitored relation is checked —
    # an unmonitored pair has no suspicion series and proves nothing.
    # The battery judged is the one the spec's detector *claims*
    # (System.assumptions), so S/◇S substrates aren't graded against ◇P
    # expectations — and flawed_cm, which claims ◇P's battery, visibly
    # fails it.
    verdicts = check_detector_properties(
        eng.trace, pids, schedule, built.system.assumptions,
        pairs=built.monitors)
    result.oracle_accuracy_ok = verdicts.accuracy_ok
    result.oracle_completeness_ok = verdicts.completeness_ok
    result.violations_justified = justify_violations(
        eng.trace, exclusion.violations,
        detector=built.system.detector_label)
    return result
