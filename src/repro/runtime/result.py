"""The uniform envelope for one run's outcome.

A :class:`RunResult` bundles everything downstream consumers read off a
finished run: the four dining/oracle verdicts, run metrics, the end time,
and a handle on the trace (plus the sink mode that produced it, so a
truncated trace is never misread as a complete one).
``ScenarioReport``, chaos ``RunVerdict``, and ``ExperimentResult`` are
thin views over (or wrappers around) this envelope.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Optional, TYPE_CHECKING

from repro.dining.fairness import FairnessReport
from repro.dining.spec import ExclusionReport, WaitFreedomReport
from repro.obs.registry import MetricsSnapshot
from repro.sim.metrics import RunMetrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.trace import Trace


@dataclass
class RunResult:
    """Verdicts + metrics + trace handle for one executed :class:`RunSpec`.

    Verdict fields are ``None`` when the run was executed unchecked (a
    ``counters`` trace sink retains no rows, so there is nothing to check
    against); :attr:`checked` distinguishes "all invariants verified" from
    "nothing was verified".
    """

    name: str = "run"
    seed: int = 0
    end_time: float = 0.0
    metrics: Optional[RunMetrics] = None
    #: Full metric snapshot (:mod:`repro.obs`): traffic counters plus, when
    #: the spec's ``obs`` knob is on, detector-quality probes (convergence
    #: time, wrongful suspicions, latency histograms).  Plain data — it
    #: pickles across the worker pool and serializes via ``to_dict``.
    obs: Optional[MetricsSnapshot] = None
    wait_freedom: Optional[WaitFreedomReport] = None
    exclusion: Optional[ExclusionReport] = None
    fairness: Optional[FairnessReport] = None
    #: Box-oracle (◇P substrate) verdicts: eventual strong accuracy and
    #: strong completeness, checked from the trace over the whole run.
    oracle_accuracy_ok: Optional[bool] = None
    oracle_completeness_ok: Optional[bool] = None
    #: The ◇WX mechanism check: every exclusion violation must be
    #: *oracle-justified* — at least one endpoint's eating session began
    #: while it suspected the other.  (The later entrant cannot hold the
    #: shared fork, since forks never leave an eater, so an unjustified
    #: violation means the dining layer itself double-granted an edge.)
    #: Unlike a fixed convergence deadline this is robust to legitimate
    #: late ◇P mistakes, which become rarer but may occur arbitrarily
    #: deep into a finite run.
    violations_justified: Optional[bool] = None
    #: Sink mode the run's trace was recorded under (``full`` | ``ring:N``
    #: | ``counters``) and how many rows that sink evicted.  Failure
    #: summaries carry these so a truncated-trace replay is never misread
    #: as missing events.
    trace_mode: str = "full"
    trace_evicted: int = 0
    #: Handle on the run's trace.  Dropped (``None``) when results cross a
    #: worker-process boundary in parallel campaigns — verdicts and
    #: metrics travel, bulk event history does not.
    trace: "Optional[Trace]" = None
    #: Content address of the spec that produced this result
    #: (:func:`repro.runtime.store.spec_hash`): the key the run is cached
    #: under in a :class:`~repro.runtime.store.ResultStore`.  Stamped by
    #: :func:`~repro.runtime.builder.execute`; kept out of :meth:`summary`
    #: so run records stay comparable across store/no-store campaigns.
    spec_key: Optional[str] = None
    #: Typed spans (:mod:`repro.obs.spans`) when the spec's ``spans`` knob
    #: was on: per-pair suspicion intervals, dining phases, crash points,
    #: convergence marker — plain dicts, so they pickle across the worker
    #: pool and survive :meth:`detach_trace`.  Kept out of :meth:`summary`
    #: (the determinism-comparison surface) — export them with
    #: :meth:`span_records` / ``--spans-out`` instead.
    spans: Optional[list] = None

    @property
    def checked(self) -> bool:
        """True when the invariant battery actually ran for this result."""
        return self.wait_freedom is not None

    @property
    def ok(self) -> bool:
        return self.checked and self.wait_freedom.ok

    def eventually_exclusive_by(self, t: float) -> bool:
        """◇WX convergence test: did all exclusion violations end by ``t``?"""
        return self.exclusion.eventually_exclusive_by(t)

    def span_records(self) -> list[dict[str, Any]]:
        """This run's ``repro.span.v1`` JSONL records (empty when the
        spec's ``spans`` knob was off)."""
        from repro.obs.spans import span_records

        if self.spans is None:
            return []
        return span_records(self.name, self.seed, self.end_time, self.spans)

    def detach_trace(self) -> "RunResult":
        """Drop the trace handle (cheap to pickle across process pools)."""
        self.trace = None
        return self

    # -- detector-quality conveniences (from the obs snapshot) ---------------

    @property
    def convergence_time(self) -> Optional[float]:
        """End of the last wrongful-suspicion interval (◇P convergence);
        None when obs is off or a wrongful suspicion was still open."""
        return None if self.obs is None \
            else self.obs.gauge_value("oracle.converged_at")

    @property
    def wrongful_suspicions(self) -> Optional[int]:
        return None if self.obs is None \
            else int(self.obs.counter_value("oracle.wrongful_suspicions"))

    @property
    def suspicion_churn(self) -> Optional[int]:
        return None if self.obs is None \
            else int(self.obs.counter_value("oracle.suspicion_churn"))

    def detector_stats(self, label: str) -> Optional[dict[str, Any]]:
        """Per-detector-label probe readings for one suspicion stream.

        A run may host several labeled streams (the dining-facing
        detector plus e.g. Ω's internal ◇P under ``omega.sub``); the
        lattice compares detectors by their dining-facing label only.
        Returns None when obs was off.
        """
        if self.obs is None:
            return None
        from repro.obs.registry import escape_label_value

        suffix = '{detector="' + escape_label_value(label) + '"}'
        open_gauge = self.obs.gauge_value("oracle.wrongful_open" + suffix)
        return {
            "detector": label,
            "wrongful_suspicions": int(self.obs.counter_value(
                "oracle.wrongful_suspicions" + suffix)),
            "suspicion_churn": int(self.obs.counter_value(
                "oracle.suspicion_churn" + suffix)),
            "wrongful_open": (None if open_gauge is None
                              else int(open_gauge)),
            "converged_at": self.obs.gauge_value(
                "oracle.converged_at" + suffix),
        }

    def summary(self) -> dict[str, Any]:
        """Flat, JSON-serializable digest used by determinism comparisons.

        Every field is present in every mode: verdict fields are ``None``
        on unchecked runs, cost fields are ``None`` when no
        :class:`RunMetrics` was collected, convergence fields are ``None``
        when the ``obs`` knob was off.
        """
        m = self.metrics
        return {
            "name": self.name,
            "seed": self.seed,
            "end_time": self.end_time,
            "checked": self.checked,
            "ok": self.ok if self.checked else None,
            "wait_free": self.wait_freedom.ok if self.checked else None,
            "max_hungry_wait": (round(self.wait_freedom.max_wait, 6)
                                if self.checked else None),
            "exclusion_violations": (self.exclusion.count
                                     if self.checked else None),
            "violations_justified": self.violations_justified,
            "oracle_accuracy_ok": self.oracle_accuracy_ok,
            "oracle_completeness_ok": self.oracle_completeness_ok,
            "messages_sent": None if m is None else m.messages_sent,
            "messages_dropped": None if m is None else m.messages_dropped,
            "messages_duplicated": None if m is None else m.messages_duplicated,
            "retransmissions": None if m is None else m.retransmissions,
            "events_processed": None if m is None else m.events_processed,
            "convergence_time": self.convergence_time,
            "wrongful_suspicions": self.wrongful_suspicions,
            "suspicion_churn": self.suspicion_churn,
            "trace_mode": self.trace_mode,
            "trace_evicted": self.trace_evicted,
        }

    @classmethod
    def view_fields(cls, result: "RunResult") -> dict[str, Any]:
        """Field dict for constructing thin subclass views over ``result``."""
        return {f.name: getattr(result, f.name)
                for f in dataclasses.fields(RunResult)}
