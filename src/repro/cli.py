"""Command-line entry point: list and run the paper's experiments.

Usage::

    python -m repro list
    python -m repro run e4
    python -m repro run all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence


def _registry():
    from repro.experiments import REGISTRY

    return REGISTRY


def cmd_list() -> int:
    registry = _registry()
    print("available experiments (see DESIGN.md §4 / EXPERIMENTS.md):\n")
    for eid, mod in registry.items():
        print(f"  {eid:<4} {mod.TITLE}")
    return 0


def cmd_scenario(path: str) -> int:
    from repro.scenario import Scenario

    report = Scenario.from_json(path).run()
    print(report.render())
    return 0 if report.ok else 1


def cmd_sweep(path: str, seeds: Sequence[int]) -> int:
    from repro.analysis.report import Table
    from repro.analysis.stats import sweep_many
    from repro.scenario import Scenario

    base = Scenario.from_json(path)

    def one(seed: int) -> dict:
        import dataclasses

        scenario = dataclasses.replace(base, seed=seed)
        report = scenario.run()
        return {
            "wait_free": 1.0 if report.wait_freedom.ok else 0.0,
            "max_wait": report.wait_freedom.max_wait,
            "violations": float(report.exclusion.count),
            "last_violation": report.exclusion.last_violation_end,
            "worst_overtaking": float(report.fairness.worst_overall()),
            "messages": float(report.metrics.messages_sent),
        }

    stats = sweep_many(one, list(seeds))
    table = Table(["metric", "mean ± std [min, max] (n)"],
                  title=f"sweep: {base.name} over {len(list(seeds))} seeds")
    for name, st in stats.items():
        table.add_row([name, st.summary()])
    print(table.render())
    return 0 if stats["wait_free"].mean == 1.0 else 1


def cmd_run(names: Sequence[str]) -> int:
    registry = _registry()
    if list(names) == ["all"]:
        names = list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use 'python -m repro list'", file=sys.stderr)
        return 2
    failures = 0
    for name in names:
        t0 = time.perf_counter()
        result = registry[name].run()
        dt = time.perf_counter() - t0
        print(result.render())
        print(f"\n({dt:.1f}s wall)\n{'=' * 72}")
        failures += 0 if result.ok else 1
    return 1 if failures else 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for 'The Weakest Failure "
                    "Detector for Wait-Free Dining under Eventual Weak "
                    "Exclusion'",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids and titles")
    runp = sub.add_parser("run", help="run experiments by id ('all' for every one)")
    runp.add_argument("names", nargs="+", help="experiment ids, e.g. e1 e4, or 'all'")
    scen = sub.add_parser("scenario",
                          help="run a declarative scenario from a JSON file")
    scen.add_argument("path", help="path to the scenario JSON")
    swp = sub.add_parser("sweep",
                         help="run a scenario across a seed range and "
                              "aggregate statistics")
    swp.add_argument("path", help="path to the scenario JSON")
    swp.add_argument("--seeds", type=int, default=8,
                     help="number of seeds (0..N-1, default 8)")
    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "scenario":
        return cmd_scenario(args.path)
    if args.command == "sweep":
        return cmd_sweep(args.path, range(args.seeds))
    return cmd_run(args.names)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
