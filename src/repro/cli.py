"""Command-line entry point: experiments, scenarios, sweeps, chaos, bench.

Usage::

    python -m repro list
    python -m repro run e4
    python -m repro run all
    python -m repro scenario examples/scenarios/ring5_crash.json
    python -m repro sweep examples/scenarios/ring5_crash.json --seeds 16
    python -m repro chaos --campaigns 20 --seed 1 --json
    python -m repro chaos --campaigns 64 --workers 4   # multi-core fanout
    python -m repro chaos --replay 2885616951     # reproduce one run
    python -m repro chaos --campaigns 20 --metrics-out out.jsonl
    python -m repro report out.jsonl              # campaign telemetry table
    python -m repro chaos --graphs rgg:100:0.15:7 --pairs neighbors
    python -m repro bench                         # engine microbenchmarks
    python -m repro bench --check                 # fail on perf regression
    python -m repro bench --scaling               # events/sec-vs-n curve
    python -m repro serve --store results.jsonl   # campaign service daemon
    python -m repro submit spec.json --campaign 16 --wait
    python -m repro store ls results.jsonl        # cache inspection

``repro serve`` runs the persistent campaign service (HTTP RunSpec
submission, bounded async job queue, content-addressed cache hits, SSE
job progress, live ``/metrics``, graceful SIGTERM drain with
journal-backed restart recovery); ``repro submit`` is the thin client
and ``repro store ls`` the cache debugging loop — see docs/service.md.

Four flags are accepted uniformly by ``run``/``scenario``/``sweep``/
``chaos`` (shared argparse parent parsers, so helptext and defaults stay
in lockstep):

* ``--workers N`` fans work over a multiprocessing pool; results are
  keyed by seed and bit-identical to the serial run (single-run commands
  accept the flag for interface uniformity and note that it is unused);
* ``--metrics-out PATH`` writes one JSONL record per run with the full
  metric snapshot (docs/observability.md); ``repro report`` aggregates
  such a file into p50/p95/max convergence time, wrongful-suspicion
  totals, and merged latency histograms;
* ``--trace-sink SPEC`` (``full`` | ``ring:N`` | ``counters``) overrides
  the run's trace retention — ``counters`` turns verdict checking off
  (metrics-only runs; see docs/runtime.md);
* ``--profile-out PATH`` wraps the command in :mod:`cProfile` and dumps
  a pstats file for ``python -m pstats`` / snakeviz
  (docs/performance.md);
* ``--task-timeout SECONDS`` bounds each pooled run's wall clock — a
  hung worker is killed and the run retried with seeded backoff
  (docs/reliability.md).

``sweep`` and ``chaos`` additionally accept ``--store PATH`` (checkpoint
per-run results to a content-addressed JSONL store as they complete) and
``--resume`` (serve already-stored runs from the store instead of
re-executing them); an interrupted campaign keeps its partial results and
resumes to byte-identical output (docs/reliability.md).

``scenario``/``sweep``/``chaos`` accept ``--spans-out PATH``: span-level
tracing (per-pair suspicion intervals, dining phases, crash points,
convergence markers) exported as ``repro.span.v1`` JSONL, which
``repro timeline`` renders into suspicion Gantt charts and cross-seed
convergence CDFs (ASCII on stdout, SVG with ``--svg-out``) —
docs/observability.md.  ``sweep`` and ``chaos`` also accept
``--progress`` (force the live stderr progress line even when stderr is
not a TTY) and ``--progress-out PATH`` (append-only heartbeat JSONL, a
liveness signal for long or resumed campaigns).

``repro bench`` runs the deterministic microbench harness
(:mod:`repro.perf.bench`) and emits ``BENCH_engine.json``-shaped output;
``--check`` compares against the committed baseline and fails on a
``--max-regression``-fold slowdown (the CI ``bench-smoke`` job).
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time
from typing import Sequence


def _out_path_error(path: "str | None", flag: str) -> "str | None":
    """One-line diagnosis when an output path cannot work, else None.

    Checked *before* any simulation runs, so a typo'd ``--metrics-out``
    or ``--profile-out`` fails in milliseconds instead of tracebacking
    after a long campaign.  Missing parent directories are created (the
    profiler and bench writer already did so; this makes every output
    flag behave the same way).
    """
    if path is None:
        return None
    p = pathlib.Path(path)
    if p.is_dir():
        return f"{flag} {path}: is a directory, expected a file path"
    try:
        p.parent.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        return f"{flag} {path}: cannot create directory {p.parent} ({exc})"
    if not os.access(p.parent, os.W_OK):
        return f"{flag} {path}: directory {p.parent} is not writable"
    if p.exists() and not os.access(p, os.W_OK):
        return f"{flag} {path}: file is not writable"
    return None


def _fail_usage(prog: str, message: str) -> int:
    print(f"{prog}: error: {message}", file=sys.stderr)
    return 2


def _registry():
    from repro.experiments import REGISTRY

    return REGISTRY


def cmd_list() -> int:
    registry = _registry()
    print("available experiments (see DESIGN.md §4 / EXPERIMENTS.md):\n")
    for eid, mod in registry.items():
        print(f"  {eid:<4} {mod.TITLE}")
    return 0


def cmd_scenario(path: str, metrics_out: str | None = None,
                 trace_sink: str | None = None,
                 spans_out: str | None = None) -> int:
    import dataclasses

    from repro.scenario import Scenario

    spec = Scenario.from_json(path)
    if trace_sink is not None:
        spec = dataclasses.replace(spec, trace=trace_sink)
    if spans_out is not None:
        spec = dataclasses.replace(spec, spans=True)
    report = spec.run()
    print(report.render())
    if metrics_out is not None:
        from repro.obs import run_record, write_jsonl

        write_jsonl(metrics_out, [run_record(report)])
        print(f"metrics written to {metrics_out}")
    if spans_out is not None:
        from repro.obs import write_jsonl

        n = write_jsonl(spans_out, report.span_records())
        print(f"{n} span records written to {spans_out}")
    if not report.checked:
        # counters-sink run: metrics-only, no verdict to gate the exit on.
        return 0
    return 0 if report.ok else 1


def _sweep_one(task: tuple) -> dict:
    """One sweep run (module-level so worker pools pickle it by reference)."""
    import dataclasses

    from repro.obs import run_record

    base, seed = task
    report = dataclasses.replace(base, seed=seed).run()
    stats = {"messages": float(report.metrics.messages_sent)}
    if report.checked:
        stats.update({
            "wait_free": 1.0 if report.wait_freedom.ok else 0.0,
            "max_wait": report.wait_freedom.max_wait,
            "violations": float(report.exclusion.count),
            "last_violation": report.exclusion.last_violation_end,
            "worst_overtaking": float(report.fairness.worst_overall()),
        })
    row = {
        "stats": stats,
        "record": run_record(report.detach_trace()),
    }
    if report.spans is not None:
        row["spans"] = report.span_records()
    return row


def cmd_sweep(path: str, seeds: Sequence[int], workers: int = 1,
              metrics_out: str | None = None,
              trace_sink: str | None = None,
              store: "object | None" = None,
              resume: bool = False,
              task_timeout: float | None = None,
              spans_out: str | None = None,
              progress: "object | None" = None) -> int:
    """Run one scenario across ``seeds`` and aggregate the verdicts."""
    import dataclasses

    from repro.analysis.report import Table
    from repro.analysis.stats import sweep_many
    from repro.obs import CampaignTelemetry, write_jsonl
    from repro.runtime import ParallelExecutor, SupervisedExecutor
    from repro.runtime.store import resumable_map, spec_hash
    from repro.scenario import Scenario

    base = Scenario.from_json(path)
    if trace_sink is not None:
        base = dataclasses.replace(base, trace=trace_sink)
    if spans_out is not None:
        base = dataclasses.replace(base, spans=True)
    seeds = list(seeds)
    shards = [(base, seed) for seed in seeds]
    if progress is not None:
        progress.start()
    try:
        if store is not None:
            executor = SupervisedExecutor(workers=workers,
                                          timeout=task_timeout)
            rows = resumable_map(
                _sweep_one, shards,
                keys=[spec_hash(dataclasses.replace(base, seed=int(seed)))
                      for seed in seeds],
                encode=lambda row: row,
                decode=lambda payload, i, item: payload,
                store=store, resume=resume, executor=executor,
                on_result=(None if progress is None else progress.update))
        else:
            rows = ParallelExecutor(workers=workers, timeout=task_timeout).map(
                _sweep_one, shards,
                on_result=(None if progress is None else progress.update))
    finally:
        if progress is not None:
            progress.finish()
    by_seed = dict(zip(seeds, (row["stats"] for row in rows)))
    stats = sweep_many(lambda seed: by_seed[seed], seeds)
    table = Table(["metric", "mean ± std [min, max] (n)"],
                  title=f"sweep: {base.name} over {len(list(seeds))} seeds")
    for name, st in stats.items():
        table.add_row([name, st.summary()])
    print(table.render())
    records = [row["record"] for row in rows]
    tele = CampaignTelemetry.from_records(records)
    if tele.with_metrics:
        print(tele.render(title=f"sweep telemetry: {base.name}"))
    if metrics_out is not None:
        write_jsonl(metrics_out, records)
        print(f"metrics written to {metrics_out}")
    if spans_out is not None:
        span_recs = [rec for row in rows for rec in (row.get("spans") or ())]
        n = write_jsonl(spans_out, span_recs)
        print(f"{n} span records written to {spans_out}")
    if "wait_free" not in stats:
        return 0  # unchecked (counters-sink) sweep: metrics-only
    return 0 if stats["wait_free"].mean == 1.0 else 1


def _progress_reporter(args, total: int, label: str):
    """A :class:`~repro.runtime.progress.ProgressReporter` for a campaign,
    or None when neither a TTY nor a progress flag asks for one."""
    from repro.runtime import ProgressReporter

    forced = bool(args.progress or args.progress_out)
    if not forced and not sys.stderr.isatty():
        return None
    return ProgressReporter(total, label=label,
                            heartbeat_path=args.progress_out,
                            live=True if args.progress else None)


def _chaos_config(args) -> "ChaosConfig":
    from repro.chaos import ChaosConfig

    kwargs = {}
    if args.graphs:
        kwargs["graphs"] = tuple(args.graphs)
    return ChaosConfig(
        campaigns=args.campaigns,
        seed=args.seed,
        drop_max=args.drop_max,
        duplicate_max=args.duplicate_max,
        partition_prob=args.partition_prob,
        max_faulty=args.max_faulty,
        slow_prob=args.slow_prob,
        max_time=args.max_time,
        transport=not args.no_transport,
        trace=args.trace_sink or "full",
        detector=getattr(args, "detector", None) or "eventually_perfect",
        pairs=args.pairs,
        allow_disconnected=args.allow_disconnected,
        spans=bool(args.spans or args.spans_out is not None),
        **kwargs,
    )


def _open_store(args, prog: str):
    """``(store, error_exit_code)`` from the ``--store``/``--resume``
    flags; store is None when the flags are unused."""
    from repro.errors import ReproError
    from repro.runtime.store import ResultStore

    if args.resume and not args.store:
        return None, _fail_usage(prog, "--resume requires --store PATH")
    if not args.store:
        return None, None
    try:
        return ResultStore(args.store), None
    except ReproError as exc:
        return None, _fail_usage(prog, str(exc))


def _report_store(args, store, prog: str) -> None:
    """Cache-hit accounting on stderr (kept out of stdout so campaign
    output stays byte-comparable across fresh/resumed runs)."""
    if store is None:
        return
    stats = store.stats()
    print(f"{prog}: store {args.store}: "
          f"{int(stats.get('store.hits', 0))} cache hit(s), "
          f"{int(stats.get('store.puts', 0))} new result(s), "
          f"{len(store)} total", file=sys.stderr)


def _report_interrupt(args, store, prog: str) -> int:
    if store is not None:
        print(f"{prog}: interrupted; {len(store)} result(s) checkpointed in "
              f"{args.store} — rerun with --store {args.store} --resume to "
              "continue", file=sys.stderr)
    else:
        print(f"{prog}: interrupted (no --store: partial results were "
              "discarded)", file=sys.stderr)
    return 130


def cmd_chaos(args) -> int:
    """Run a seeded chaos campaign (or replay a single failed run)."""
    import json

    from repro.chaos import replay, run_campaign
    from repro.errors import ConfigurationError
    from repro.runtime import SupervisedExecutor

    try:
        cfg = _chaos_config(args)
    except ConfigurationError as exc:
        print(f"repro chaos: error: {exc}", file=sys.stderr)
        return 2
    if args.replay is not None:
        verdict = replay(args.replay, cfg)
        if args.json:
            print(json.dumps(verdict.summary(), indent=2))
        else:
            print(verdict.report.render())
            status = "ok" if verdict.ok else "; ".join(verdict.failures)
            print(f"\nreplay of run seed {args.replay}: {status}")
        if args.metrics_out is not None:
            from repro.obs import write_jsonl

            write_jsonl(args.metrics_out, [verdict.run_record()])
        if args.spans_out is not None:
            from repro.obs import write_jsonl

            n = write_jsonl(args.spans_out, verdict.span_records())
            if not args.json:
                print(f"{n} span records written to {args.spans_out}")
        return 0 if verdict.ok else 1

    store, err = _open_store(args, "repro chaos")
    if err is not None:
        return err
    executor = SupervisedExecutor(workers=args.workers,
                                  timeout=args.task_timeout)
    progress = _progress_reporter(args, cfg.campaigns, "chaos")
    if progress is not None:
        progress.start()
    try:
        result = run_campaign(
            cfg, workers=args.workers, store=store,
            resume=args.resume, executor=executor,
            on_result=(None if progress is None else progress.update))
    except KeyboardInterrupt:
        return _report_interrupt(args, store, "repro chaos")
    finally:
        if progress is not None:
            progress.finish()
    if args.json:
        print(json.dumps(result.to_json(), indent=2))
    else:
        print(result.render())
    _report_store(args, store, "repro chaos")
    if args.metrics_out is not None:
        from repro.obs import write_jsonl

        n = write_jsonl(args.metrics_out, result.run_records())
        if not args.json:
            print(f"{n} run records written to {args.metrics_out}")
    if args.spans_out is not None:
        from repro.obs import write_jsonl

        n = write_jsonl(args.spans_out, result.span_records())
        if not args.json:
            print(f"{n} span records written to {args.spans_out}")
    return 0 if result.ok else 1


def cmd_lattice(args) -> int:
    """Run every registered detector through identical seeded chaos
    campaigns and print the cross-detector comparison matrix."""
    import json

    from repro.errors import ReproError
    from repro.lattice import compare

    for flag, value in (("--out", args.out), ("--svg-out", args.svg_out)):
        err = _out_path_error(value, flag)
        if err is not None:
            return _fail_usage("repro lattice", err)
    store, err = _open_store(args, "repro lattice")
    if err is not None:
        return err
    try:
        result = compare(
            graphs=tuple(args.graphs), seeds=args.seeds, seed=args.seed,
            detectors=args.detectors, workers=args.workers, store=store,
            resume=args.resume, max_time=args.max_time, client=args.client,
            drop_max=args.drop_max, pairs=args.pairs,
            quiet_fraction=args.quiet_fraction)
    except KeyboardInterrupt:
        return _report_interrupt(args, store, "repro lattice")
    except ReproError as exc:
        print(f"repro lattice: error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        payload = {"schema": "repro.lattice.v1",
                   "graphs": list(result.graphs),
                   "seeds": result.seeds,
                   "seed": result.seed,
                   "quiet_fraction": result.quiet_fraction,
                   "records": result.to_records()}
        print(json.dumps(payload, sort_keys=True, indent=2))
    else:
        print(result.render())
    _report_store(args, store, "repro lattice")
    if args.out is not None:
        from repro.obs import write_jsonl

        n = write_jsonl(args.out, result.to_records())
        # Artifact notices go to stderr (the `repro timeline` convention)
        # so stdout is exactly the matrix — byte-comparable across
        # worker counts regardless of artifact paths.
        print(f"{n} lattice records written to {args.out}",
              file=sys.stderr)
    if args.svg_out is not None:
        from repro.analysis.svg import save_svg

        save_svg(result.to_svg(), args.svg_out)
        print(f"dominance grid written to {args.svg_out}",
              file=sys.stderr)
    return 0


def cmd_report(path: str, as_json: bool = False,
               prom_out: str | None = None) -> int:
    """Aggregate a ``--metrics-out`` JSONL file into campaign telemetry."""
    import json

    from repro.errors import ConfigurationError
    from repro.obs import (
        EXPERIMENT_SCHEMA,
        CampaignTelemetry,
        read_jsonl,
        write_prometheus,
    )

    try:
        records = read_jsonl(path)
    except (OSError, ConfigurationError) as exc:
        print(f"repro report: error: {exc}", file=sys.stderr)
        return 2
    runs = [r for r in records if r.get("schema") != EXPERIMENT_SCHEMA]
    if not runs:
        print(f"repro report: no run records in {path}", file=sys.stderr)
        return 2
    tele = CampaignTelemetry.from_records(runs)
    if tele.skipped_no_metrics:
        print(f"repro report: warning: {tele.skipped_no_metrics} record(s) "
              "without a usable metrics block skipped (obs-disabled runs?)",
              file=sys.stderr)
    if as_json:
        print(json.dumps(tele.summary(), indent=2, sort_keys=True))
    else:
        print(tele.render(title=f"campaign telemetry: {path}"))
    if prom_out is not None:
        write_prometheus(prom_out, tele.merged_snapshot())
        if not as_json:
            print(f"prometheus textfile written to {prom_out}")
    return 0


def cmd_timeline(args) -> int:
    """Render ``repro.span.v1`` files into suspicion Gantt charts and a
    cross-seed convergence CDF (ASCII on stdout, SVG via ``--svg-out``)."""
    from repro.errors import ConfigurationError
    from repro.obs.timeline import (
        load_span_records,
        render_timeline_ascii,
        render_timeline_svg,
    )

    err = _out_path_error(args.svg_out, "--svg-out")
    if err is not None:
        return _fail_usage("repro timeline", err)
    try:
        records = load_span_records(args.paths)
        print(render_timeline_ascii(records, seed=args.seed,
                                    width=args.width))
        if args.svg_out is not None:
            from repro.analysis.svg import save_svg

            save_svg(render_timeline_svg(records, seed=args.seed,
                                         width=args.svg_width),
                     args.svg_out)
            # stderr, so stdout stays the render alone (diffable in CI).
            print(f"svg written to {args.svg_out}", file=sys.stderr)
    except (OSError, ConfigurationError) as exc:
        print(f"repro timeline: error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_bench_scaling(args) -> int:
    """The events/sec-vs-n scaling curve (``repro bench --scaling``)."""
    import json

    from repro.errors import ConfigurationError
    from repro.perf.scaling import (
        SCALING_PATH,
        emit_scaling_report,
        render_scaling,
        run_scaling,
    )

    out = args.out if args.out is not None else str(SCALING_PATH)
    err = _out_path_error(out, "--out")
    if err is not None:
        return _fail_usage("repro bench", err)
    kwargs = {"families": args.workloads or None}
    if args.ns:
        kwargs["ns"] = args.ns
    try:
        points = run_scaling(**kwargs)
    except ConfigurationError as exc:
        print(f"repro bench: error: {exc}", file=sys.stderr)
        return 2
    payload = emit_scaling_report(points, out=out)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_scaling(points))
        print(f"scaling report written to {out}")
    return 0


def cmd_bench(args) -> int:
    """Run the engine microbench harness (see docs/performance.md)."""
    import json

    from repro.errors import ConfigurationError
    from repro.perf.bench import (
        check_regressions,
        compare_to_baseline,
        emit_report,
        load_baseline,
        render_results,
        run_bench,
    )

    if args.scaling:
        return _cmd_bench_scaling(args)
    # Fail on bad paths *before* spending the bench budget: a missing
    # baseline or unwritable report path is a one-line error, not a
    # traceback after the timed runs.
    err = _out_path_error(args.out, "--out")
    if err is not None:
        return _fail_usage("repro bench", err)
    try:
        baseline = load_baseline(args.baseline)
        results = run_bench(args.workloads or None, budget=args.budget)
    except ConfigurationError as exc:
        print(f"repro bench: error: {exc}", file=sys.stderr)
        return 2
    speedups = compare_to_baseline(results, baseline)
    payload = emit_report(results, baseline, out=args.out)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_results(results, speedups))
        if args.out:
            print(f"bench report written to {args.out}")
    if args.check:
        failures = check_regressions(results, baseline,
                                     max_regression=args.max_regression)
        if baseline is None:
            print("repro bench: --check requested but no baseline found",
                  file=sys.stderr)
            return 2
        if failures:
            for failure in failures:
                print(f"repro bench: regression: {failure}", file=sys.stderr)
            return 1
        if not args.json:
            print(f"no regression beyond {args.max_regression:g}x "
                  "vs baseline")
    return 0


def cmd_serve(args) -> int:
    """Run the persistent campaign service (docs/service.md)."""
    from repro.errors import ReproError
    from repro.service.server import ServiceConfig, serve_forever

    try:
        config = ServiceConfig(
            store_path=args.store, host=args.host, port=args.port,
            journal_path=args.journal, workers=args.workers,
            queue_max=args.queue_max, task_timeout=args.task_timeout,
            drain_grace=args.drain_grace)
        return serve_forever(config)
    except ReproError as exc:
        print(f"repro serve: error: {exc}", file=sys.stderr)
        return 2


def cmd_submit(args) -> int:
    """Submit a RunSpec JSON file to a running campaign service."""
    import json

    from repro.errors import ReproError
    from repro.service.client import Client, ServiceError

    try:
        spec_data = json.loads(pathlib.Path(args.path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return _fail_usage("repro submit",
                           f"cannot read spec {args.path}: {exc}")
    client = Client(args.host, args.port, timeout=args.timeout)
    try:
        if args.campaign is not None:
            sub = client.submit_campaign(spec_data, runs=args.campaign)
        else:
            sub = client.submit_run(spec_data)
        out = dict(sub)
        if args.wait and out.get("job"):
            out["final"] = client.wait(out["job"], timeout=args.timeout)
    except (ServiceError, ReproError) as exc:
        print(f"repro submit: error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(out, indent=2, sort_keys=True))
    else:
        if out.get("cached"):
            print(f"cache hit: {out['spec_key']} (served from store, "
                  "no job scheduled)")
        else:
            label = (f"campaign of {out['total']} runs"
                     if args.campaign is not None else "run")
            print(f"job {out['job']} queued ({label})")
        final = out.get("final")
        if final is not None:
            print(f"job {final['id']}: {final['state']} — "
                  f"{final['done']}/{final['total']} runs "
                  f"({final['cached']} cached, "
                  f"{final['failed_runs']} failed)")
    final = out.get("final")
    if final is not None:
        return 0 if (final["state"] == "done"
                     and not final["failed_runs"]) else 1
    return 0


def cmd_store(args) -> int:
    """Inspect a content-addressed result store (``repro store ls``)."""
    import json

    from repro.analysis.report import Table
    from repro.errors import ReproError
    from repro.runtime.store import ResultStore

    if not pathlib.Path(args.path).exists():
        return _fail_usage("repro store", f"no store at {args.path}")
    try:
        store = ResultStore(args.path)
    except ReproError as exc:
        print(f"repro store: error: {exc}", file=sys.stderr)
        return 2
    entries = [{"spec_key": key, **_store_digest(payload)}
               for key, payload in store.items()]
    counters = {name: int(value) for name, value in store.stats().items()}
    if args.json:
        print(json.dumps({"path": str(args.path), "entries": entries,
                          "counters": counters},
                         indent=2, sort_keys=True))
        return 0
    table = Table(["spec_key", "name", "seed", "ok", "events"],
                  title=f"store: {args.path} ({len(store)} result(s))")
    for entry in entries:
        table.add_row([entry["spec_key"], entry["name"],
                       entry["seed"], entry["ok"], entry["events"]])
    print(table.render())
    print("counters: " + ", ".join(
        f"{name.split('.', 1)[1]} {counters.get(name, 0)}"
        for name in ("store.hits", "store.misses", "store.puts",
                     "store.corrupt_lines")))
    return 0


def _store_digest(payload) -> dict:
    """Human row for one store payload: every writer (service runs, chaos
    verdicts, sweep rows) embeds a ``record.summary`` block; degrade to
    blanks on anything else rather than failing the listing."""
    record = payload.get("record") if isinstance(payload, dict) else None
    summary = record.get("summary") if isinstance(record, dict) else None
    if not isinstance(summary, dict):
        summary = {}
    return {"name": summary.get("name"), "seed": summary.get("seed"),
            "ok": summary.get("ok"), "events": summary.get("events_processed")}


def _run_experiment(name: str) -> tuple:
    """One experiment by id, timed (module-level for worker pools)."""
    registry = _registry()
    t0 = time.perf_counter()
    result = registry[name].run()
    return result, time.perf_counter() - t0


def cmd_run(names: Sequence[str], workers: int = 1,
            metrics_out: str | None = None,
            trace_sink: str | None = None,
            task_timeout: float | None = None) -> int:
    from repro.runtime import ParallelExecutor

    registry = _registry()
    if trace_sink is not None:
        # Experiment harnesses wire their own engines and verdicts need
        # retained traces, so the flag is accepted (interface uniformity)
        # but does not reach them.
        print("note: --trace-sink does not apply to experiment harnesses; "
              "ignored", file=sys.stderr)
    if list(names) == ["all"]:
        names = list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use 'python -m repro list'", file=sys.stderr)
        return 2
    failures = 0
    outcomes = ParallelExecutor(workers=workers,
                                timeout=task_timeout).map(_run_experiment,
                                                          names)
    for result, dt in outcomes:
        print(result.render())
        print(f"\n({dt:.1f}s wall)\n{'=' * 72}")
        failures += 0 if result.ok else 1
    if metrics_out is not None:
        from repro.obs import experiment_record, write_jsonl

        # Experiment harnesses drive their own engines, so there is no
        # per-run snapshot here — record name/verdict/wall time instead.
        write_jsonl(metrics_out,
                    [experiment_record(name, result.ok, dt)
                     for name, (result, dt) in zip(names, outcomes)])
        print(f"experiment records written to {metrics_out}")
    return 1 if failures else 0


def _common_parents() -> list[argparse.ArgumentParser]:
    """The flag set shared by ``run``/``scenario``/``sweep``/``chaos``.

    One parser per flag so helptext, metavar, and default are declared
    exactly once; ``parents=`` composes them per subcommand.
    """
    workers = argparse.ArgumentParser(add_help=False)
    workers.add_argument("--workers", type=int, default=1,
                         help="worker processes to fan runs over (default 1 "
                              "= serial; per-seed results are identical)")
    workers.add_argument("--task-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="wall-clock budget per pooled run; a hung "
                              "worker is killed and the run retried with "
                              "seeded backoff (docs/reliability.md)")
    metrics = argparse.ArgumentParser(add_help=False)
    metrics.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="write one JSONL metric record per run "
                              "(deterministic: independent of --workers)")
    trace = argparse.ArgumentParser(add_help=False)
    trace.add_argument("--trace-sink", default=None, metavar="SPEC",
                       help="trace retention override: full | ring:N | "
                            "counters (counters = metrics-only, no verdict "
                            "checking)")
    profile = argparse.ArgumentParser(add_help=False)
    profile.add_argument("--profile-out", default=None, metavar="PATH",
                         help="profile the command with cProfile and dump "
                              "pstats to PATH")
    return [workers, metrics, trace, profile]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for 'The Weakest Failure "
                    "Detector for Wait-Free Dining under Eventual Weak "
                    "Exclusion'",
    )
    parents = _common_parents()
    spansp = argparse.ArgumentParser(add_help=False)
    spansp.add_argument("--spans-out", default=None, metavar="PATH",
                        help="export span-level tracing (suspicion "
                             "intervals, dining phases, crashes, "
                             "convergence) as repro.span.v1 JSONL for "
                             "'repro timeline' (implies span collection)")
    progp = argparse.ArgumentParser(add_help=False)
    progp.add_argument("--progress", action="store_true",
                       help="force the live stderr progress line even when "
                            "stderr is not a TTY")
    progp.add_argument("--progress-out", default=None, metavar="PATH",
                       help="append heartbeat JSONL snapshots per completed "
                            "run (liveness signal for long/resumed "
                            "campaigns)")
    storep = argparse.ArgumentParser(add_help=False)
    storep.add_argument("--store", default=None, metavar="PATH",
                        help="checkpoint per-run results to a "
                             "content-addressed JSONL store as they land "
                             "(docs/reliability.md)")
    storep.add_argument("--resume", action="store_true",
                        help="serve runs already in --store from the store "
                             "instead of re-executing them")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids and titles")
    runp = sub.add_parser("run", parents=parents,
                          help="run experiments by id ('all' for every one)")
    runp.add_argument("names", nargs="+",
                      help="experiment ids, e.g. e1 e4, or 'all'")
    scen = sub.add_parser("scenario", parents=parents + [spansp],
                          help="run a declarative scenario from a JSON file")
    scen.add_argument("path", help="path to the scenario JSON")
    swp = sub.add_parser("sweep", parents=parents + [storep, spansp, progp],
                         help="run a scenario across a seed fanout and "
                              "aggregate statistics")
    swp.add_argument("path", help="path to the scenario JSON")
    swp.add_argument("--seeds", type=int, default=8,
                     help="number of derived seeds (default 8)")
    swp.add_argument("--seed", type=int, default=0,
                     help="base seed the fanout derives from (default 0)")
    cha = sub.add_parser("chaos", parents=parents + [storep, spansp, progp],
                         help="run a seeded randomized fault campaign and "
                              "check dining/oracle invariants per run")
    cha.add_argument("--spans", action="store_true",
                     help="collect span-level tracing even without "
                          "--spans-out (kept in --store payloads and "
                          "replay-run reports)")
    cha.add_argument("--campaigns", type=int, default=20,
                     help="number of randomized runs (default 20)")
    cha.add_argument("--seed", type=int, default=0,
                     help="base seed; each run's seed derives from it")
    cha.add_argument("--replay", type=int, default=None, metavar="RUN_SEED",
                     help="re-run exactly one run from its reported seed")
    cha.add_argument("--drop-max", type=float, default=0.3,
                     help="max per-run message drop probability")
    cha.add_argument("--duplicate-max", type=float, default=0.1,
                     help="max per-run duplication probability")
    cha.add_argument("--partition-prob", type=float, default=0.5,
                     help="probability a run gets a partition window")
    cha.add_argument("--max-faulty", type=int, default=1,
                     help="max crashed processes per run")
    cha.add_argument("--slow-prob", type=float, default=0.3,
                     help="probability a run gets a targeted-delay adversary")
    cha.add_argument("--max-time", type=float, default=900.0,
                     help="virtual horizon per run")
    cha.add_argument("--no-transport", action="store_true",
                     help="expose raw lossy links to the algorithms "
                          "(negative testing; expect invariant failures)")
    cha.add_argument("--graphs", nargs="+", default=None, metavar="SPEC",
                     help="topology pool runs draw from (graph spec strings, "
                          "e.g. ring:4 rgg:100:0.2:7; default: small "
                          "rings/paths/stars)")
    cha.add_argument("--detector", default=None, metavar="NAME",
                     help="failure detector every run uses, by registry "
                          "name (default eventually_perfect; see "
                          "docs/detectors.md)")
    cha.add_argument("--pairs", default="all",
                     help="detector pair selection: all | neighbors | "
                          "neighbors:<k> (neighbors = conflict-graph-local "
                          "monitoring; see docs/topologies.md)")
    cha.add_argument("--allow-disconnected", action="store_true",
                     help="accept disconnected conflict graphs (components "
                          "monitored independently)")
    cha.add_argument("--json", action="store_true",
                     help="emit a machine-readable campaign summary")
    lat = sub.add_parser("lattice", parents=[storep],
                         help="compare every registered failure detector "
                              "through identical seeded chaos campaigns "
                              "(◇WX verdicts, convergence, churn, message "
                              "cost, dominance grid; docs/detectors.md)")
    lat.add_argument("--graphs", nargs="+", default=["ring:6"],
                     metavar="SPEC",
                     help="topology pool (graph spec strings; "
                          "default ring:6)")
    lat.add_argument("--seeds", type=int, default=4,
                     help="seeded runs per detector (default 4)")
    lat.add_argument("--seed", type=int, default=0,
                     help="base seed the run seeds derive from (default 0)")
    lat.add_argument("--detectors", nargs="+", default=None, metavar="NAME",
                     help="registry names to compare (default: every "
                          "registered detector)")
    lat.add_argument("--workers", type=int, default=1,
                     help="worker processes per campaign (default 1; "
                          "output is byte-identical to serial)")
    lat.add_argument("--max-time", type=float, default=600.0,
                     help="virtual horizon per run (default 600)")
    lat.add_argument("--client", default="periodic",
                     help="workload client spec (default periodic)")
    lat.add_argument("--drop-max", type=float, default=0.1,
                     help="max per-run message drop probability "
                          "(default 0.1)")
    lat.add_argument("--pairs", default="all",
                     help="detector pair selection: all | neighbors | "
                          "neighbors:<k>")
    lat.add_argument("--quiet-fraction", type=float, default=0.25,
                     help="final run fraction that must be violation-free "
                          "for the ◇WX verdict (default 0.25)")
    lat.add_argument("--json", action="store_true",
                     help="emit the full matrix as JSON")
    lat.add_argument("--out", default=None, metavar="PATH",
                     help="write repro.lattice.v1 JSONL records to PATH")
    lat.add_argument("--svg-out", default=None, metavar="PATH",
                     help="write the SVG dominance grid to PATH")
    tl = sub.add_parser("timeline",
                        help="render repro.span.v1 files (--spans-out) into "
                             "per-pair suspicion Gantt charts and a "
                             "cross-seed convergence CDF")
    tl.add_argument("paths", nargs="+",
                    help="span JSONL files (from --spans-out)")
    tl.add_argument("--seed", type=int, default=None,
                    help="run seed to render lanes for (default: the first "
                         "run found; the CDF always covers every run)")
    tl.add_argument("--width", type=int, default=88,
                    help="ASCII lane width in columns (default 88)")
    tl.add_argument("--svg-out", default=None, metavar="PATH",
                    help="also write an SVG rendering to PATH")
    tl.add_argument("--svg-width", type=int, default=900,
                    help="SVG canvas width in px (default 900)")
    rep = sub.add_parser("report",
                         help="aggregate a --metrics-out JSONL file into "
                              "campaign telemetry (p50/p95/max convergence "
                              "time, latency histograms, message totals)")
    rep.add_argument("path", help="path to the JSONL metrics file")
    rep.add_argument("--json", action="store_true",
                     help="emit the aggregate as JSON instead of a table")
    rep.add_argument("--prom-out", default=None, metavar="PATH",
                     help="also write the merged campaign snapshot as a "
                          "Prometheus textfile")
    ben = sub.add_parser("bench",
                         help="run the engine microbench harness and "
                              "compare against the committed baseline")
    ben.add_argument("--workloads", nargs="*", default=None,
                     help="workload names (default: all; see "
                          "repro.perf.bench.WORKLOADS)")
    ben.add_argument("--budget", type=float, default=1.5,
                     help="timed seconds per workload (default 1.5)")
    ben.add_argument("--out", default=None, metavar="PATH",
                     help="write the BENCH_engine.json payload to PATH")
    ben.add_argument("--baseline", default=None, metavar="PATH",
                     help="baseline JSON to compare against (default: the "
                          "committed BENCH_engine_baseline.json)")
    ben.add_argument("--check", action="store_true",
                     help="exit nonzero on a --max-regression-fold slowdown "
                          "vs the baseline")
    ben.add_argument("--max-regression", type=float, default=3.0,
                     help="tolerated slowdown factor for --check "
                          "(default 3.0; bench hosts vary)")
    ben.add_argument("--json", action="store_true",
                     help="emit the bench payload as JSON")
    ben.add_argument("--scaling", action="store_true",
                     help="measure the events/sec-vs-n scaling curve on "
                          "sparse families (pairs=neighbors) instead of the "
                          "fixed microbenchmarks; writes BENCH_scaling.json "
                          "(with --scaling, --workloads selects families "
                          "and --out overrides the artifact path)")
    ben.add_argument("--ns", nargs="*", type=int, default=None,
                     metavar="N",
                     help="system sizes for --scaling "
                          "(default: 16 64 256 1000)")
    srv = sub.add_parser("serve",
                         help="run the persistent campaign service: HTTP "
                              "RunSpec submissions, async job queue, "
                              "result-cache hits, live /metrics "
                              "(docs/service.md)")
    srv.add_argument("--store", required=True, metavar="PATH",
                     help="content-addressed result store backing the "
                          "cache (created if missing)")
    srv.add_argument("--journal", default=None, metavar="PATH",
                     help="job journal for restart recovery "
                          "(default: <store>.jobs)")
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    srv.add_argument("--port", type=int, default=8642,
                     help="bind port (default 8642; 0 picks a free port)")
    srv.add_argument("--workers", type=int, default=1,
                     help="supervised worker processes per job (default 1)")
    srv.add_argument("--queue-max", type=int, default=64,
                     help="bounded job-queue depth; submissions beyond it "
                          "get 503 (default 64)")
    srv.add_argument("--task-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="wall-clock budget per pooled run "
                          "(docs/reliability.md)")
    srv.add_argument("--drain-grace", type=float, default=60.0,
                     metavar="SECONDS",
                     help="seconds SIGTERM waits for queued jobs before "
                          "exiting with them journaled (default 60)")
    sbm = sub.add_parser("submit",
                         help="submit a RunSpec JSON file to a running "
                              "campaign service")
    sbm.add_argument("path", help="path to the RunSpec JSON")
    sbm.add_argument("--campaign", type=int, default=None, metavar="RUNS",
                     help="submit as a seed fan-out campaign of RUNS runs")
    sbm.add_argument("--host", default="127.0.0.1",
                     help="service host (default 127.0.0.1)")
    sbm.add_argument("--port", type=int, default=8642,
                     help="service port (default 8642)")
    sbm.add_argument("--wait", action="store_true",
                     help="poll the job until done/failed and exit "
                          "nonzero on failure")
    sbm.add_argument("--timeout", type=float, default=300.0,
                     help="request/wait timeout in seconds (default 300)")
    sbm.add_argument("--json", action="store_true",
                     help="print the raw submission (and final job) JSON")
    sto = sub.add_parser("store",
                         help="inspect a content-addressed result store")
    stosub = sto.add_subparsers(dest="store_command", required=True)
    stols = stosub.add_parser("ls",
                              help="list spec keys, run summaries, and "
                                   "hit/miss/put/corrupt counters")
    stols.add_argument("path", help="path to the store JSONL file")
    stols.add_argument("--json", action="store_true",
                       help="emit the listing as JSON")
    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "report":
        return cmd_report(args.path, as_json=args.json,
                          prom_out=args.prom_out)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "lattice":
        return cmd_lattice(args)
    if args.command == "timeline":
        return cmd_timeline(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "submit":
        return cmd_submit(args)
    if args.command == "store":
        return cmd_store(args)

    # Output-path flags fail in milliseconds, not after a long campaign.
    for flag, value in (("--metrics-out", args.metrics_out),
                        ("--profile-out", args.profile_out),
                        ("--spans-out", getattr(args, "spans_out", None)),
                        ("--progress-out",
                         getattr(args, "progress_out", None))):
        err = _out_path_error(value, flag)
        if err is not None:
            return _fail_usage(f"repro {args.command}", err)

    from repro.perf.profiler import profile_to

    with profile_to(args.profile_out):
        if args.command == "scenario":
            if args.workers != 1:
                print("note: --workers does not apply to a single scenario "
                      "run; ignored", file=sys.stderr)
            return cmd_scenario(args.path, metrics_out=args.metrics_out,
                                trace_sink=args.trace_sink,
                                spans_out=args.spans_out)
        if args.command == "sweep":
            from repro.runtime import fanout_seeds

            store, err = _open_store(args, "repro sweep")
            if err is not None:
                return err
            try:
                code = cmd_sweep(args.path,
                                 fanout_seeds(args.seed, args.seeds),
                                 workers=args.workers,
                                 metrics_out=args.metrics_out,
                                 trace_sink=args.trace_sink,
                                 store=store, resume=args.resume,
                                 task_timeout=args.task_timeout,
                                 spans_out=args.spans_out,
                                 progress=_progress_reporter(
                                     args, args.seeds, "sweep"))
            except KeyboardInterrupt:
                return _report_interrupt(args, store, "repro sweep")
            _report_store(args, store, "repro sweep")
            return code
        if args.command == "chaos":
            return cmd_chaos(args)
        return cmd_run(args.names, workers=args.workers,
                       metrics_out=args.metrics_out,
                       trace_sink=args.trace_sink,
                       task_timeout=args.task_timeout)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
