"""Programmatic client for the campaign service (stdlib ``http.client``).

:class:`Client` wraps the service's HTTP protocol one method per
endpoint, raising :class:`ServiceError` (with the HTTP status) on error
responses.  ``repro submit`` is a thin CLI shim over this class; tests
and notebooks use it directly::

    from repro.service import Client

    client = Client("127.0.0.1", 8642)
    sub = client.submit_run({"graph": "ring:4", "seed": 7})
    if not sub["cached"]:
        client.wait(sub["job"])
    payload = client.result(sub["spec_key"])

Each call opens one connection (the server closes after every
response), so a client object is cheap, stateless, and safe to share.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator, Mapping, Optional

from repro.errors import ReproError
from repro.service.jobs import TERMINAL


class ServiceError(ReproError):
    """An error response (or transport failure) from the service."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class Client:
    """One campaign service, as Python methods."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: "Mapping[str, Any] | None" = None,
                 expect: "tuple[int, ...]" = (200, 202)) -> "tuple[int, bytes]":
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = (None if body is None
                       else json.dumps(body).encode("utf-8"))
            headers = {"Content-Type": "application/json"} if payload else {}
            try:
                conn.request(method, path, body=payload, headers=headers)
                resp = conn.getresponse()
                data = resp.read()
                status = resp.status
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"service at {self.host}:{self.port} unreachable: "
                    f"{exc}") from exc
        finally:
            conn.close()
        if status not in expect:
            raise ServiceError(
                f"{method} {path} -> {status}: {_error_text(data)}",
                status=status)
        return status, data

    def _json(self, method: str, path: str,
              body: "Mapping[str, Any] | None" = None,
              expect: "tuple[int, ...]" = (200, 202)) -> dict[str, Any]:
        _, data = self._request(method, path, body, expect)
        return json.loads(data)

    # -- endpoints -----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics(self) -> str:
        """The raw ``/metrics`` Prometheus textfile body."""
        _, data = self._request("GET", "/metrics", expect=(200,))
        return data.decode("utf-8")

    def submit_run(self, spec: Mapping[str, Any]) -> dict[str, Any]:
        """Submit one RunSpec dict.  Returns ``{"cached", "spec_key",
        "job", ...}`` — ``cached`` True means the result rode back in
        the response and no job was scheduled."""
        return self._json("POST", "/v1/runs", body=dict(spec))

    def submit_campaign(self, spec: Mapping[str, Any],
                        runs: Optional[int] = None,
                        seeds: "Optional[list[int]]" = None) -> dict[str, Any]:
        """Submit a seed fan-out of one base spec (``runs`` derived seeds,
        or an explicit ``seeds`` list)."""
        body: dict[str, Any] = {"spec": dict(spec)}
        if runs is not None:
            body["runs"] = int(runs)
        if seeds is not None:
            body["seeds"] = [int(s) for s in seeds]
        return self._json("POST", "/v1/campaigns", body=body)

    def result(self, spec_key: str) -> dict[str, Any]:
        """The cached ``repro.result.v1`` payload for a spec key."""
        return json.loads(self.result_bytes(spec_key))

    def result_bytes(self, spec_key: str) -> bytes:
        """The exact cached payload bytes (the byte-identity surface:
        equal to ``payload_bytes(result_payload(repro.run(spec)))``)."""
        _, data = self._request("GET", f"/v1/runs/{spec_key}",
                                expect=(200,))
        return data

    def job(self, job_id: str) -> dict[str, Any]:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> "list[dict[str, Any]]":
        return self._json("GET", "/v1/jobs")["jobs"]

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.1) -> dict[str, Any]:
        """Poll until the job reaches done/failed; returns the final
        snapshot (raises :class:`ServiceError` on timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            snap = self.job(job_id)
            if snap["state"] in TERMINAL:
                return snap
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {snap['state']!r} after "
                    f"{timeout:g}s")
            time.sleep(poll)

    def events(self, job_id: str,
               timeout: float = 300.0) -> Iterator[dict[str, Any]]:
        """Stream the job's SSE feed: yields each ``repro.progress.v1``
        heartbeat as a dict, then the terminal job snapshot (tagged
        ``"event": "end"``), then returns."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            resp = conn.getresponse()
            if resp.status != 200:
                raise ServiceError(
                    f"GET /v1/jobs/{job_id}/events -> {resp.status}: "
                    f"{_error_text(resp.read())}", status=resp.status)
            event_name = None
            for raw in resp:
                line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
                if line.startswith("event:"):
                    event_name = line.split(":", 1)[1].strip()
                elif line.startswith("data:"):
                    record = json.loads(line.split(":", 1)[1].strip())
                    if event_name == "end":
                        record["event"] = "end"
                        yield record
                        return
                    yield record
                elif not line:
                    event_name = None
        finally:
            conn.close()


def _error_text(data: bytes) -> str:
    try:
        return json.loads(data).get("error", data.decode("utf-8", "replace"))
    except (json.JSONDecodeError, AttributeError, UnicodeDecodeError):
        return data.decode("utf-8", "replace")[:200]
