"""Journal-backed restart recovery for the campaign service.

The journal is an append-only JSONL file recording every job submission
and every state transition (``repro.job.v1`` records).  It is the
service's only persistent job state: on startup the journal is replayed,
terminal jobs come back as read-only history, and jobs that were queued
or running when the previous process died (crash, SIGKILL, drain
timeout) are **re-enqueued** with their original ids and specs — the
content-addressed :class:`~repro.runtime.store.ResultStore` then serves
whatever those jobs had already computed, so recovery re-simulates only
the genuinely lost tail (docs/service.md).

Durability model matches the store: one record per line, single
``O_APPEND`` write + fsync per record, torn-final-line tolerance on
load.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.service.jobs import JOB_SCHEMA, QUEUED, TERMINAL, Job


class JobJournal:
    """Append-only job event log (submissions + state transitions)."""

    def __init__(self, path: "str | pathlib.Path") -> None:
        self.path = pathlib.Path(path)
        if self.path.is_dir():
            raise ConfigurationError(
                f"journal path {self.path} is a directory")
        if not self.path.parent.is_dir():
            raise ConfigurationError(
                f"journal directory {self.path.parent} does not exist")

    def _append(self, record: dict[str, Any]) -> None:
        data = (json.dumps(record, sort_keys=True, separators=(",", ":"))
                + "\n").encode("utf-8")
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            while data:
                data = data[os.write(fd, data):]
            os.fsync(fd)
        finally:
            os.close(fd)

    def record_submit(self, job: Job) -> None:
        self._append({
            "schema": JOB_SCHEMA,
            "event": "submit",
            "id": job.id,
            "kind": job.kind,
            "specs": job.specs,
            "spec_keys": job.spec_keys,
            "wall_time": round(time.time(), 3),
        })

    def record_state(self, job: Job) -> None:
        self._append({
            "schema": JOB_SCHEMA,
            "event": "state",
            "id": job.id,
            "state": job.state,
            "error": job.error,
            "wall_time": round(time.time(), 3),
        })

    def replay(self) -> "list[RecoveredJob]":
        """Submission-order job history from the journal (empty when the
        file does not exist yet)."""
        if not self.path.exists():
            return []
        text = self.path.read_text(encoding="utf-8")
        lines = text.splitlines()
        jobs: dict[str, RecoveredJob] = {}
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                event = rec["event"]
                job_id = rec["id"]
            except (json.JSONDecodeError, KeyError, TypeError):
                if i == len(lines) - 1 and not text.endswith("\n"):
                    continue  # torn final append; that event is lost
                raise ConfigurationError(
                    f"{self.path}:{i + 1}: corrupt journal line (not a "
                    f"{JOB_SCHEMA} record); move the file aside") from None
            if event == "submit":
                jobs[job_id] = RecoveredJob(
                    job_id=job_id, kind=rec.get("kind", "run"),
                    specs=list(rec.get("specs") or []),
                    spec_keys=list(rec.get("spec_keys") or []))
            elif event == "state" and job_id in jobs:
                jobs[job_id].state = rec.get("state", QUEUED)
                jobs[job_id].error = rec.get("error")
        return list(jobs.values())


class RecoveredJob:
    """One journal-replayed job: terminal history, or work to re-enqueue."""

    __slots__ = ("job_id", "kind", "specs", "spec_keys", "state", "error")

    def __init__(self, job_id: str, kind: str, specs: list,
                 spec_keys: list, state: str = QUEUED,
                 error: Optional[str] = None) -> None:
        self.job_id = job_id
        self.kind = kind
        self.specs = specs
        self.spec_keys = spec_keys
        self.state = state
        self.error = error

    @property
    def incomplete(self) -> bool:
        """True when the previous process died before finishing this job."""
        return self.state not in TERMINAL
