"""Canonical wire encodings for the campaign service.

The service's whole caching argument rests on one invariant: the bytes
``GET /v1/runs/<spec_key>`` serves are exactly the bytes a local
``repro.run()`` of the same spec would produce under the same encoding.
That holds because both sides funnel through the two functions here:

* :func:`result_payload` — the plain-data envelope for one executed
  :class:`~repro.runtime.result.RunResult` (spec key + the
  ``repro.run.v1`` record the JSONL exporters already emit), and
* :func:`payload_bytes` — its deterministic JSON encoding (sorted keys,
  compact separators, via :func:`repro.obs.exporters.dumps_record`).

:func:`execute_spec_payload` is the module-level worker task the
service's :class:`~repro.runtime.executor.SupervisedExecutor` pool
pickles by reference: spec dict in, result payload out.  Because
:func:`repro.runtime.builder.execute` is a pure function of its spec,
the payload is bit-identical whether computed in a pool worker, the
service process, or a caller's own interpreter — which is what makes a
stored payload a sound cache entry (docs/service.md).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.obs.exporters import dumps_record, run_record
from repro.runtime.result import RunResult
from repro.runtime.spec import RunSpec

#: Schema tag on every service result payload.
RESULT_SCHEMA = "repro.result.v1"


def result_payload(result: RunResult) -> dict[str, Any]:
    """The service's canonical plain-data envelope for one run result."""
    return {
        "schema": RESULT_SCHEMA,
        "spec_key": result.spec_key,
        "record": run_record(result),
    }


def payload_bytes(payload: Mapping[str, Any]) -> bytes:
    """Deterministic JSON bytes for a payload (the HTTP response body)."""
    return dumps_record(payload).encode("utf-8")


def execute_spec_payload(spec_data: Mapping[str, Any]) -> dict[str, Any]:
    """Worker task: execute one canonical spec dict, return its payload.

    Module-level so the supervised pool pickles it by reference; pure
    function of ``spec_data``, so retries and cache replays agree.
    """
    from repro.runtime.builder import execute

    result = execute(RunSpec.from_dict(dict(spec_data)))
    return result_payload(result)
