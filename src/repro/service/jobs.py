"""Job lifecycle for the campaign service: queued → running → done/failed.

A :class:`Job` is one accepted submission — a single run or a seed
fan-out campaign — reduced to plain data the moment it is accepted: the
canonical spec dicts, their content addresses
(:func:`~repro.runtime.store.spec_hash`), and a state machine.  Jobs are
created, mutated, and read **only on the service's event-loop thread**
(executor threads marshal results in via ``call_soon_threadsafe``), so
there are no locks here; HTTP handlers always observe a consistent job.

Progress is delegated to the existing
:class:`~repro.runtime.progress.ProgressReporter` — every landed run
appends one ``repro.progress.v1`` heartbeat record to
:attr:`Job.heartbeats`, the same schema the CLI's ``--progress-out``
emits, so ``GET /v1/jobs/<id>/events`` streams records any existing
heartbeat consumer already understands.
"""

from __future__ import annotations

import asyncio
import io
import time
from typing import Any, Optional

from repro.runtime.progress import ProgressReporter

#: Schema tag on job snapshots and journal records.
JOB_SCHEMA = "repro.job.v1"

# Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: All states, in lifecycle order (the /metrics per-state gauges).
STATES = (QUEUED, RUNNING, DONE, FAILED)

#: States a job never leaves.
TERMINAL = (DONE, FAILED)


class Job:
    """One accepted submission moving through the service's queue."""

    def __init__(self, job_id: str, kind: str,
                 specs: list[dict[str, Any]],
                 spec_keys: list[str],
                 wall_clock=time.time) -> None:
        if len(specs) != len(spec_keys):
            raise ValueError(
                f"{len(specs)} specs but {len(spec_keys)} keys")
        self.id = job_id
        self.kind = kind  # "run" | "campaign"
        self.specs = specs
        self.spec_keys = spec_keys
        self.state = QUEUED
        self.error: Optional[str] = None
        self._wall_clock = wall_clock
        self.created_wall = wall_clock()
        self.started_wall: Optional[float] = None
        self.finished_wall: Optional[float] = None
        #: repro.progress.v1 records, one per landed run (append-only).
        self.heartbeats: list[dict[str, Any]] = []
        #: Replaced (not cleared) on every change so any number of SSE
        #: subscribers can wait without racing each other.
        self._changed = asyncio.Event()
        self.reporter = ProgressReporter(
            total=len(specs), label=job_id, stream=io.StringIO(),
            live=False)
        self.reporter.start()

    # -- lifecycle -----------------------------------------------------------

    def mark_running(self) -> None:
        self.state = RUNNING
        self.started_wall = self._wall_clock()
        self._notify()

    def mark_done(self) -> None:
        self.state = DONE
        self.finished_wall = self._wall_clock()
        self.reporter.finish()
        self._notify()

    def mark_failed(self, error: str) -> None:
        self.state = FAILED
        self.error = error
        self.finished_wall = self._wall_clock()
        self.reporter.finish()
        self._notify()

    def record_result(self, index: int, payload: Any,
                      cached: bool) -> None:
        """Fold one landed run (event-loop thread; ``on_result`` shape)."""
        self.reporter.update(index, payload, cached)
        self.heartbeats.append(self.reporter.snapshot())
        self._notify()

    # -- observation ---------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL

    def _notify(self) -> None:
        event, self._changed = self._changed, asyncio.Event()
        event.set()

    def changed(self) -> asyncio.Event:
        """The event the *next* change will set (capture before checking
        state, then ``await`` it if nothing new was found)."""
        return self._changed

    def snapshot(self) -> dict[str, Any]:
        """The job as one JSON-ready status document (``GET /v1/jobs/<id>``)."""
        return {
            "schema": JOB_SCHEMA,
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "error": self.error,
            "total": len(self.specs),
            "done": self.reporter.done,
            "cached": self.reporter.cached,
            "failed_runs": self.reporter.failed,
            "spec_keys": list(self.spec_keys),
            "created_wall": round(self.created_wall, 3),
            "started_wall": (None if self.started_wall is None
                             else round(self.started_wall, 3)),
            "finished_wall": (None if self.finished_wall is None
                              else round(self.finished_wall, 3)),
            "progress": self.heartbeats[-1] if self.heartbeats else None,
        }


def next_job_id(existing: "list[str] | set[str]") -> str:
    """The next ``j<n>`` id after every numeric id in ``existing`` (journal
    recovery keeps restarted services from reissuing ids)."""
    highest = 0
    for jid in existing:
        if jid.startswith("j") and jid[1:].isdigit():
            highest = max(highest, int(jid[1:]))
    return f"j{highest + 1}"
