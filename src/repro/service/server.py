"""The campaign service: a persistent HTTP front door over the runtime.

``repro serve`` turns the library's ``RunSpec → RunResult`` pipeline
into a long-running daemon:

* **Submission** — ``POST /v1/runs`` accepts one canonical-JSON
  :class:`~repro.runtime.spec.RunSpec`; ``POST /v1/campaigns`` accepts a
  base spec plus a seed fan-out.  Submissions become
  :class:`~repro.service.jobs.Job` entries on a bounded queue.
* **Caching** — every spec is content-addressed
  (:func:`~repro.runtime.store.spec_hash`) into the shared
  :class:`~repro.runtime.store.ResultStore`.  A re-submitted spec is a
  cache hit: served straight from the store, no job scheduled, hit
  counters surfaced on ``/metrics``.  ``GET /v1/runs/<spec_key>``
  returns the stored payload as deterministic JSON bytes — byte-equal to
  what a local ``repro.run()`` of the same spec encodes to
  (:mod:`repro.service.encoding`).
* **Execution** — one dispatcher drains the queue; each job runs on the
  existing :class:`~repro.runtime.executor.SupervisedExecutor` pool via
  :func:`~repro.runtime.store.resumable_map`, which serves per-seed
  cache hits and checkpoints fresh results the moment they land.
* **Observation** — ``GET /v1/jobs/<id>`` is the job status document;
  ``GET /v1/jobs/<id>/events`` streams its ``repro.progress.v1``
  heartbeats as Server-Sent Events; ``GET /metrics`` renders the
  service's own :class:`~repro.obs.registry.MetricsRegistry` through the
  existing Prometheus exporter (queue depth, jobs by state, cache hit
  ratio, events/sec).
* **Lifecycle** — SIGTERM/SIGINT triggers a graceful drain (stop
  accepting, finish queued work within ``drain_grace``); the
  :class:`~repro.service.journal.JobJournal` re-enqueues incomplete
  jobs on restart.

Everything is stdlib: ``asyncio.start_server`` plus a minimal
HTTP/1.1 reader (one request per connection, ``Connection: close``).
All job state lives on the event-loop thread; the executor thread
marshals results in with ``call_soon_threadsafe``, so handlers never
see a half-updated job.  See docs/service.md for the protocol.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import os
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ConfigurationError, ReproError
from repro.obs.exporters import prometheus_text
from repro.obs.registry import MetricsRegistry
from repro.runtime.executor import SupervisedExecutor
from repro.runtime.progress import progress_sample
from repro.runtime.seeds import fanout_seeds
from repro.runtime.spec import RunSpec
from repro.runtime.store import (
    ResultStore,
    canonical_spec,
    resumable_map,
    spec_hash,
)
from repro.service import jobs as jobstates
from repro.service.encoding import execute_spec_payload, payload_bytes
from repro.service.jobs import Job, next_job_id
from repro.service.journal import JobJournal

#: Hard cap on one HTTP request (start line + headers + body).
MAX_REQUEST_BYTES = 4 * 1024 * 1024

#: Seconds an idle client connection may take to deliver its request.
REQUEST_TIMEOUT = 30.0

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error",
            503: "Service Unavailable"}


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` needs to run one service instance."""

    store_path: str
    host: str = "127.0.0.1"
    port: int = 8642
    journal_path: Optional[str] = None  # default: <store_path>.jobs
    workers: int = 1
    queue_max: int = 64
    task_timeout: Optional[float] = None
    drain_grace: float = 60.0
    #: Default fan-out for campaigns submitted without runs/seeds.
    default_runs: int = 8

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigurationError(
                f"workers must be non-negative, got {self.workers}")
        if self.queue_max < 1:
            raise ConfigurationError(
                f"queue-max must be >= 1, got {self.queue_max}")
        if self.drain_grace < 0:
            raise ConfigurationError(
                f"drain-grace must be non-negative, got {self.drain_grace}")

    @property
    def journal(self) -> str:
        return self.journal_path or self.store_path + ".jobs"


def _decode_payload(payload: dict, index: int, item: Any) -> dict:
    """resumable_map decode hook: stored payloads are served verbatim."""
    return payload


class CampaignService:
    """One service instance: HTTP server + job queue + dispatcher."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.registry = MetricsRegistry()
        self.store = ResultStore(config.store_path, metrics=self.registry)
        self.journal = JobJournal(config.journal)
        self.jobs: dict[str, Job] = {}
        self.draining = False
        self._running: Optional[Job] = None
        self._t0 = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self.queue: Optional[asyncio.Queue] = None
        self._shutdown: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "tuple[str, int]":
        """Recover the journal, start the dispatcher and the listener;
        returns the bound ``(host, port)`` (port 0 picks a free one)."""
        self.queue = asyncio.Queue()
        self._shutdown = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-exec")
        self._recover()
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-service-dispatch")
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port,
            limit=MAX_REQUEST_BYTES)
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    def _recover(self) -> None:
        """Replay the journal: terminal jobs become history, incomplete
        jobs are re-enqueued with their original ids."""
        for rec in self.journal.replay():
            job = Job(rec.job_id, rec.kind, rec.specs, rec.spec_keys)
            self.jobs[job.id] = job
            if rec.incomplete and rec.specs:
                self.queue.put_nowait(job)
                self.registry.counter("service.jobs_recovered").inc()
            else:
                # Read-only history: per-run progress did not survive the
                # restart, but the outcome did.
                job.state = rec.state
                job.error = rec.error
                if rec.state == jobstates.DONE:
                    job.reporter.done = len(rec.specs)

    def request_shutdown(self) -> None:
        """Begin a graceful drain (signal-handler safe on the loop)."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def run_until_drained(self) -> bool:
        """Block until shutdown is requested, then drain.

        Returns True when every queued/running job finished within
        ``drain_grace``; False when incomplete jobs remain (they stay in
        the journal and are re-enqueued on the next start).
        """
        await self._shutdown.wait()
        self.draining = True
        if self._server is not None:
            self._server.close()
        drained = await self._wait_idle(self.config.drain_grace)
        if drained:
            self.queue.put_nowait(None)
            await self._dispatcher
        else:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
        self._pool.shutdown(wait=drained)
        if self._server is not None:
            with contextlib.suppress(Exception):
                await asyncio.wait_for(self._server.wait_closed(), 1.0)
        return drained

    async def _wait_idle(self, grace: float) -> bool:
        deadline = time.monotonic() + grace
        while True:
            if self.queue.qsize() == 0 and self._running is None:
                return True
            if time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.05)

    # -- dispatch / execution ------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self.queue.get()
            if job is None:
                return
            self._running = job
            job.mark_running()
            self.journal.record_state(job)
            try:
                await loop.run_in_executor(
                    self._pool, self._execute_job, job, loop)
            except Exception as exc:
                job.mark_failed(f"{type(exc).__name__}: {exc}")
                self.registry.counter("service.jobs_failed").inc()
            else:
                job.mark_done()
                self.registry.counter("service.jobs_done").inc()
            self.journal.record_state(job)
            self._running = None

    def _execute_job(self, job: Job, loop: asyncio.AbstractEventLoop) -> None:
        """Executor-thread body: run the job's specs with per-seed cache
        hits served from the store and fresh results checkpointed into
        it (exactly the CLI's ``--store --resume`` machinery)."""
        def on_result(index: int, payload: dict, cached: bool) -> None:
            loop.call_soon_threadsafe(
                self._record_result, job, index, payload, cached)

        resumable_map(
            execute_spec_payload, job.specs, keys=job.spec_keys,
            encode=lambda payload: payload, decode=_decode_payload,
            store=self.store, resume=True,
            executor=SupervisedExecutor(workers=self.config.workers,
                                        timeout=self.config.task_timeout),
            on_result=on_result)

    def _record_result(self, job: Job, index: int, payload: dict,
                       cached: bool) -> None:
        job.record_result(index, payload, cached)
        if cached:
            self.registry.counter("service.runs_cached").inc()
        else:
            self.registry.counter("service.runs_executed").inc()
            events = progress_sample(payload).get("events") or 0
            self.registry.counter("service.events_processed").inc(events)

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=REQUEST_TIMEOUT)
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                    asyncio.TimeoutError, ConnectionError):
                return
            try:
                method, target, headers = _parse_head(head)
            except ValueError:
                await self._respond(writer, 400,
                                    {"error": "malformed HTTP request"})
                return
            length = int(headers.get("content-length", "0") or 0)
            if length > MAX_REQUEST_BYTES:
                await self._respond(writer, 400,
                                    {"error": "request body too large"})
                return
            body = await reader.readexactly(length) if length else b""
            path = target.split("?", 1)[0]
            await self._route(writer, method, path, body)
        except ConnectionError:
            pass
        except Exception as exc:  # no request may kill the service
            self.registry.counter("service.errors").inc()
            with contextlib.suppress(Exception):
                await self._respond(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"})
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def _route(self, writer, method: str, path: str,
                     body: bytes) -> None:
        self.registry.counter("service.requests",
                              route=f"{method} {_route_label(path)}").inc()
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, self._health())
        elif path == "/metrics" and method == "GET":
            await self._respond_raw(
                writer, 200, self._metrics_text().encode("utf-8"),
                "text/plain; version=0.0.4")
        elif path == "/v1/runs" and method == "POST":
            await self._post_run(writer, body)
        elif path == "/v1/campaigns" and method == "POST":
            await self._post_campaign(writer, body)
        elif path.startswith("/v1/runs/") and method == "GET":
            await self._get_run(writer, path[len("/v1/runs/"):])
        elif path == "/v1/jobs" and method == "GET":
            await self._respond(writer, 200, {
                "jobs": [job.snapshot() for job in self.jobs.values()]})
        elif path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                await self._stream_events(writer, rest[:-len("/events")])
            else:
                job = self.jobs.get(rest)
                if job is None:
                    await self._respond(writer, 404,
                                        {"error": f"no such job {rest!r}"})
                else:
                    await self._respond(writer, 200, job.snapshot())
        elif path in ("/v1/runs", "/v1/campaigns", "/v1/jobs", "/metrics",
                      "/healthz"):
            await self._respond(writer, 405,
                                {"error": f"{method} not allowed on {path}"})
        else:
            await self._respond(writer, 404,
                                {"error": f"no such endpoint {path!r}"})

    # -- endpoints -----------------------------------------------------------

    def _health(self) -> dict:
        return {"ok": True, "draining": self.draining,
                "jobs": len(self.jobs),
                "queue_depth": 0 if self.queue is None else self.queue.qsize()}

    async def _post_run(self, writer, body: bytes) -> None:
        try:
            spec = RunSpec.from_dict(_json_object(body))
        except (ReproError, ValueError, TypeError) as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        key = spec_hash(spec)
        if key in self.store:
            # Cache hit: served synchronously, no job scheduled.  The
            # counted get keeps /metrics hit accounting exact.
            payload = self.store.get(key)
            self.registry.counter("service.cache_served").inc()
            await self._respond(writer, 200, {
                "cached": True, "spec_key": key, "job": None,
                "result": payload})
            return
        job = self._make_job("run", [canonical_spec(spec)], [key])
        if job is None:
            await self._respond_busy(writer)
            return
        await self._respond(writer, 202, {
            "cached": False, "spec_key": key, "job": job.id})

    async def _post_campaign(self, writer, body: bytes) -> None:
        try:
            data = _json_object(body)
            base = RunSpec.from_dict(dict(data.get("spec") or {}))
            if "seeds" in data and data["seeds"] is not None:
                seeds = [int(s) for s in data["seeds"]]
                if not seeds:
                    raise ConfigurationError("seeds must be non-empty")
            else:
                runs = int(data.get("runs", self.config.default_runs))
                if runs < 1:
                    raise ConfigurationError(f"runs must be >= 1, got {runs}")
                seeds = fanout_seeds(base.seed, runs)
        except (ReproError, ValueError, TypeError) as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        shards = [dataclasses.replace(base, seed=int(s)) for s in seeds]
        keys = [spec_hash(s) for s in shards]
        cached_hint = sum(1 for k in keys if k in self.store)
        job = self._make_job("campaign",
                             [canonical_spec(s) for s in shards], keys)
        if job is None:
            await self._respond_busy(writer)
            return
        await self._respond(writer, 202, {
            "job": job.id, "total": len(shards), "cached_hint": cached_hint,
            "spec_keys": keys})

    async def _get_run(self, writer, key: str) -> None:
        payload = self.store.get(key)
        if payload is None:
            await self._respond(writer, 404, {
                "error": "result not cached", "spec_key": key})
            return
        await self._respond_raw(writer, 200, payload_bytes(payload),
                                "application/json")

    def _make_job(self, kind: str, specs: list, keys: list) -> Optional[Job]:
        """Enqueue a new job, or None when draining / queue full."""
        if self.draining or self.queue.qsize() >= self.config.queue_max:
            return None
        job = Job(next_job_id(self.jobs.keys()), kind, specs, keys)
        self.jobs[job.id] = job
        self.journal.record_submit(job)
        self.queue.put_nowait(job)
        self.registry.counter("service.jobs_submitted").inc()
        return job

    async def _respond_busy(self, writer) -> None:
        reason = "draining" if self.draining else "job queue full"
        await self._respond(writer, 503, {"error": reason})

    async def _stream_events(self, writer, job_id: str) -> None:
        """SSE: replay this job's heartbeats, then follow it live until
        it reaches a terminal state."""
        job = self.jobs.get(job_id)
        if job is None:
            await self._respond(writer, 404,
                                {"error": f"no such job {job_id!r}"})
            return
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-store\r\n"
                     b"Connection: close\r\n\r\n")
        sent = 0
        while True:
            changed = job.changed()  # capture before scanning: no lost wakeup
            while sent < len(job.heartbeats):
                record = json.dumps(job.heartbeats[sent], sort_keys=True,
                                    separators=(",", ":"))
                writer.write(f"data: {record}\n\n".encode("utf-8"))
                sent += 1
            await writer.drain()
            if job.terminal:
                break
            await changed.wait()
        final = json.dumps(job.snapshot(), sort_keys=True,
                           separators=(",", ":"))
        writer.write(f"event: end\ndata: {final}\n\n".encode("utf-8"))
        await writer.drain()

    # -- metrics -------------------------------------------------------------

    def _metrics_text(self) -> str:
        """Render the service registry, refreshing the point-in-time
        gauges (queue depth, jobs by state, hit ratio, rates) at scrape."""
        reg = self.registry
        reg.gauge("service.queue_depth").set(
            0 if self.queue is None else self.queue.qsize())
        by_state = {state: 0 for state in jobstates.STATES}
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        for state, count in by_state.items():
            reg.gauge("service.jobs", state=state).set(count)
        snap = reg.snapshot()
        hits = snap.counter_value("store.hits")
        misses = snap.counter_value("store.misses")
        reg.gauge("service.cache_hit_ratio").set(
            hits / (hits + misses) if hits + misses else 0.0)
        uptime = max(time.monotonic() - self._t0, 1e-9)
        reg.gauge("service.uptime_seconds").set(round(uptime, 3))
        reg.gauge("service.events_per_sec").set(
            round(snap.counter_value("service.events_processed") / uptime, 3))
        reg.gauge("service.draining").set(1.0 if self.draining else 0.0)
        return prometheus_text(reg.snapshot())

    # -- response helpers ----------------------------------------------------

    async def _respond(self, writer, status: int, payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True, separators=(",", ":"))
                + "\n").encode("utf-8")
        await self._respond_raw(writer, status, body, "application/json")

    async def _respond_raw(self, writer, status: int, body: bytes,
                           content_type: str) -> None:
        self.registry.counter("service.responses", code=str(status)).inc()
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("utf-8") + body)
        await writer.drain()


def _parse_head(head: bytes) -> "tuple[str, str, dict[str, str]]":
    request_line, *header_lines = head.decode("latin-1").split("\r\n")
    method, target, _version = request_line.split(" ", 2)
    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), target, headers


def _route_label(path: str) -> str:
    """Collapse per-resource paths to one label value (bounded cardinality)."""
    for prefix, label in (("/v1/runs/", "/v1/runs/<key>"),
                          ("/v1/jobs/", "/v1/jobs/<id>")):
        if path.startswith(prefix):
            return label + ("/events" if path.endswith("/events") else "")
    return path


def _json_object(body: bytes) -> dict:
    try:
        data = json.loads(body.decode("utf-8") or "null")
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ConfigurationError(f"request body is not valid JSON: {exc}") \
            from exc
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"expected a JSON object body, got {type(data).__name__}")
    return data


# -- entry points ------------------------------------------------------------


def serve_forever(config: ServiceConfig) -> int:
    """Run a service until SIGTERM/SIGINT, drain, and return an exit code
    (0 = drained clean; 1 = drain grace expired with work outstanding —
    the journal re-enqueues it on the next start)."""

    async def _main() -> bool:
        service = CampaignService(config)
        loop = asyncio.get_running_loop()
        host, port = await service.start()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(sig, service.request_shutdown)
        print(f"repro serve: listening on http://{host}:{port} "
              f"(store={config.store_path}, journal={config.journal}, "
              f"workers={config.workers})", file=sys.stderr, flush=True)
        drained = await service.run_until_drained()
        outcome = ("drained clean" if drained
                   else f"drain grace ({config.drain_grace:g}s) expired; "
                        "incomplete jobs remain journaled")
        print(f"repro serve: {outcome}; {len(service.jobs)} job(s) this "
              f"session, store {config.store_path} has {len(service.store)} "
              "result(s)", file=sys.stderr, flush=True)
        return drained

    try:
        drained = asyncio.run(_main())
    except KeyboardInterrupt:  # signal handler unavailable (rare platforms)
        return 130
    if not drained:
        # A stuck executor thread would block interpreter exit; the
        # journal and store are already fsynced per record.
        sys.stderr.flush()
        os._exit(1)
    return 0


class EmbeddedService:
    """A service on a background thread — tests and programmatic embedding.

    .. code-block:: python

        from repro.service import Client, EmbeddedService, ServiceConfig

        with EmbeddedService(ServiceConfig(store_path="store.jsonl",
                                           port=0)) as (host, port):
            client = Client(host, port)
            job = client.submit_campaign({"graph": "ring:3"}, runs=4)
            client.wait(job["job"])

    ``port=0`` binds an ephemeral port; :meth:`start` returns the real
    address.  :meth:`shutdown` requests the same graceful drain SIGTERM
    would and joins the thread.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.service: Optional[CampaignService] = None
        self.address: "tuple[str, int] | None" = None
        self.drained: Optional[bool] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = None
        self._started = None
        self._error: Optional[BaseException] = None

    def start(self) -> "tuple[str, int]":
        import threading

        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service")
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ConfigurationError("service failed to start within 30s")
        if self._error is not None:
            raise self._error
        return self.address

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup/runtime failures
            self._error = exc
            self._started.set()

    async def _main(self) -> None:
        self.service = CampaignService(self.config)
        self._loop = asyncio.get_running_loop()
        self.address = await self.service.start()
        self._started.set()
        self.drained = await self.service.run_until_drained()

    def shutdown(self, timeout: float = 30.0) -> bool:
        """Graceful drain; returns True when the drain completed clean."""
        if self._loop is not None and self.service is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(
                    self.service.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        return bool(self.drained)

    def __enter__(self) -> "tuple[str, int]":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
