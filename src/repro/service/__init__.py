"""The campaign service: a persistent HTTP front door over the runtime.

``repro serve`` runs a long-lived daemon that accepts
:class:`~repro.runtime.spec.RunSpec` submissions as canonical JSON over
HTTP, executes them on the existing supervised worker pool, and serves
repeated specs as content-addressed cache hits from the shared
:class:`~repro.runtime.store.ResultStore` — the layer that turns "a CLI
you run" into "a system serving submitted scenarios".

* :class:`~repro.service.server.CampaignService` /
  :func:`~repro.service.server.serve_forever` — the asyncio server
  (``POST /v1/runs``, ``POST /v1/campaigns``, ``GET /v1/runs/<key>``,
  ``GET /v1/jobs[/<id>[/events]]``, ``GET /metrics``, ``GET /healthz``);
* :class:`~repro.service.server.EmbeddedService` — the same service on a
  background thread, for tests and programmatic embedding;
* :class:`~repro.service.client.Client` — the stdlib HTTP client
  (``repro submit`` is a shim over it);
* :mod:`~repro.service.jobs` / :mod:`~repro.service.journal` — job
  lifecycle (queued → running → done/failed) and journal-backed restart
  recovery;
* :mod:`~repro.service.encoding` — the canonical result payload whose
  bytes are identical between a service fetch and a local
  ``repro.run()`` (the cache-soundness invariant).

See docs/service.md for the full protocol and operational model.
"""

from repro.service.client import Client, ServiceError
from repro.service.encoding import (
    RESULT_SCHEMA,
    execute_spec_payload,
    payload_bytes,
    result_payload,
)
from repro.service.jobs import JOB_SCHEMA, Job, next_job_id
from repro.service.journal import JobJournal
from repro.service.server import (
    CampaignService,
    EmbeddedService,
    ServiceConfig,
    serve_forever,
)

__all__ = [
    "CampaignService",
    "Client",
    "EmbeddedService",
    "JOB_SCHEMA",
    "Job",
    "JobJournal",
    "RESULT_SCHEMA",
    "ServiceConfig",
    "ServiceError",
    "execute_spec_payload",
    "next_job_id",
    "payload_bytes",
    "result_payload",
    "serve_forever",
]
