"""Conflict-graph constructors for dining instances.

A dining instance is modeled by an undirected conflict graph ``DP = (Π, E)``
(paper Section 4): vertices are diners, and an edge means the two diners
share resources and must not eat simultaneously (eventually, under ◇WX).

All constructors return :class:`networkx.Graph` with string node names, so
graphs double as process-id sets for the simulator.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError


def _named(n: int, prefix: str) -> list[str]:
    if n < 1:
        raise ConfigurationError(f"need at least one diner, got {n}")
    return [f"{prefix}{i}" for i in range(n)]


def pair_graph(a: str, b: str) -> nx.Graph:
    """The 2-diner graph used by each reduction instance DXi."""
    g = nx.Graph()
    g.add_edge(a, b)
    return g


def ring(n: int, prefix: str = "p") -> nx.Graph:
    """Dijkstra's original table: ``n`` diners in a cycle (n >= 3)."""
    if n < 3:
        raise ConfigurationError("a ring needs at least 3 diners")
    nodes = _named(n, prefix)
    g = nx.Graph()
    g.add_nodes_from(nodes)
    g.add_edges_from((nodes[i], nodes[(i + 1) % n]) for i in range(n))
    return g


def clique(n: int, prefix: str = "p") -> nx.Graph:
    """Mutual exclusion: every pair conflicts."""
    nodes = _named(n, prefix)
    g = nx.complete_graph(len(nodes))
    return nx.relabel_nodes(g, dict(enumerate(nodes)))


def star(n_leaves: int, hub: str = "hub", prefix: str = "leaf") -> nx.Graph:
    """One hub conflicting with every leaf (highly asymmetric contention)."""
    g = nx.Graph()
    g.add_node(hub)
    for leaf in _named(n_leaves, prefix):
        g.add_edge(hub, leaf)
    return g


def path(n: int, prefix: str = "p") -> nx.Graph:
    """A line of diners (sparse local conflicts)."""
    nodes = _named(n, prefix)
    g = nx.Graph()
    g.add_nodes_from(nodes)
    g.add_edges_from(zip(nodes, nodes[1:]))
    return g


def grid(rows: int, cols: int, prefix: str = "n") -> nx.Graph:
    """A rows x cols 4-neighbour grid (the WSN coverage topology)."""
    if rows < 1 or cols < 1:
        raise ConfigurationError("grid dimensions must be positive")
    g = nx.Graph()
    name = lambda r, c: f"{prefix}{r}_{c}"  # noqa: E731
    for r in range(rows):
        for c in range(cols):
            g.add_node(name(r, c), row=r, col=c)
            if r > 0:
                g.add_edge(name(r, c), name(r - 1, c))
            if c > 0:
                g.add_edge(name(r, c), name(r, c - 1))
    return g


def random_graph(n: int, p: float, rng: np.random.Generator,
                 prefix: str = "p", connect: bool = True) -> nx.Graph:
    """Erdős–Rényi conflict graph; optionally stitched to be connected."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"edge probability out of range: {p}")
    nodes = _named(n, prefix)
    g = nx.Graph()
    g.add_nodes_from(nodes)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(nodes[i], nodes[j])
    if connect and n > 1:
        comps = [sorted(c) for c in nx.connected_components(g)]
        for a, b in zip(comps, comps[1:]):
            g.add_edge(a[0], b[0])
    return g


def random_geometric(n: int, radius: float, seed: int = 0,
                     prefix: str = "p") -> nx.Graph:
    """Seeded random geometric graph on the unit square (WSN deployments).

    ``n`` sensors are dropped uniformly at random; two conflict when their
    Euclidean distance is below ``radius``.  Node positions are stored as
    ``x`` / ``y`` attributes.  Fully deterministic for a fixed
    ``(n, radius, seed)`` triple.

    Low radii commonly disconnect the graph — that is deliberate and left
    to :func:`validate_conflict_graph` to accept or reject, so callers can
    opt into independently-monitored components.
    """
    if radius <= 0.0:
        raise ConfigurationError(f"rgg radius must be positive, got {radius}")
    nodes = _named(n, prefix)
    rng = np.random.default_rng(seed)
    pos = rng.random((n, 2))
    g = nx.Graph()
    for i, node in enumerate(nodes):
        g.add_node(node, x=float(pos[i, 0]), y=float(pos[i, 1]))
    # Vectorized pairwise distances: O(n^2) floats once at build time.
    diff = pos[:, None, :] - pos[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", diff, diff)
    ii, jj = np.nonzero(dist2 < radius * radius)
    g.add_edges_from((nodes[i], nodes[j])
                     for i, j in zip(ii.tolist(), jj.tolist()) if i < j)
    return g


def cluster_tree(n: int, arity: int = 2, prefix: str = "p") -> nx.Graph:
    """A rooted tree where node ``i``'s parent is ``(i-1) // arity``.

    Models cluster-head hierarchies in sensor networks: conflicts only
    between a node and its cluster head.  Always connected; ``n-1`` edges.
    """
    if arity < 1:
        raise ConfigurationError(f"tree arity must be >= 1, got {arity}")
    nodes = _named(n, prefix)
    g = nx.Graph()
    g.add_nodes_from(nodes)
    g.add_edges_from((nodes[(i - 1) // arity], nodes[i])
                     for i in range(1, n))
    return g


def neighbors_map(g: nx.Graph) -> dict[str, list[str]]:
    """Deterministically ordered adjacency map (stable across runs)."""
    return {v: sorted(g.neighbors(v)) for v in sorted(g.nodes)}


def _component_summary(g: nx.Graph, limit: int = 4) -> str:
    comps = sorted((sorted(c) for c in nx.connected_components(g)),
                   key=lambda c: (-len(c), c))
    parts = []
    for c in comps[:limit]:
        shown = ", ".join(c[:5]) + (", ..." if len(c) > 5 else "")
        parts.append(f"[{shown}] ({len(c)} nodes)")
    if len(comps) > limit:
        parts.append(f"... and {len(comps) - limit} more")
    return "; ".join(parts)


def validate_conflict_graph(g: nx.Graph,
                            allow_disconnected: bool = False) -> None:
    """Reject graphs a dining instance cannot use.

    Self-loops and empty graphs are always rejected.  A disconnected graph
    is rejected by default — dining progress and detector extraction only
    relate processes within a component, so a disconnected topology is
    usually an accidental one (an RGG radius set too low, say).  Pass
    ``allow_disconnected=True`` (the ``--allow-disconnected`` CLI flag) to
    run anyway with each component monitored independently.
    """
    if g.number_of_nodes() == 0:
        raise ConfigurationError("conflict graph has no diners")
    loops = list(nx.selfloop_edges(g))
    if loops:
        raise ConfigurationError(f"conflict graph has self-loops: {loops}")
    if not allow_disconnected and not nx.is_connected(g):
        n_comp = nx.number_connected_components(g)
        raise ConfigurationError(
            f"conflict graph is disconnected ({n_comp} components: "
            f"{_component_summary(g)}). Increase the rgg radius / rand edge "
            "probability, or pass --allow-disconnected to monitor each "
            "component independently.")


def edge_list(g: nx.Graph) -> list[tuple[str, str]]:
    """Canonically ordered edges (each as a sorted pair)."""
    return sorted(tuple(sorted(e)) for e in g.edges)
