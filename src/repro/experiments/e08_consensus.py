"""E8 — Section 1: the extracted oracle solves consensus.

Paper claim: ◇P suffices for consensus [3].  We close the loop end-to-end:
black-box dining → the reduction → extracted ◇P → Chandra–Toueg consensus,
under a crash of the first coordinator, and compare against the same
protocol running on the native heartbeat ◇P.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.consensus.chandra_toueg import check_consensus, setup_consensus
from repro.core.extraction import build_full_extraction
from repro.experiments.common import ExperimentResult, build_system, wf_box
from repro.sim.faults import CrashSchedule

EXP_ID = "E8"
TITLE = "Extracted ◇P drives Chandra-Toueg consensus to a decision"


def _one(seed: int, n: int, use_extraction: bool, crash_at: float,
         max_time: float) -> tuple[bool, dict]:
    pids = [f"p{i}" for i in range(n)]
    system = build_system(pids, seed=seed, gst=120.0, max_time=max_time,
                          crash=CrashSchedule.single(pids[0], crash_at))
    if use_extraction:
        detectors, _ = build_full_extraction(system.engine, pids,
                                             wf_box(system))
    else:
        detectors = system.box_modules
    proposals = {pid: f"v{i}" for i, pid in enumerate(pids)}
    endpoints = setup_consensus(system.engine, pids, detectors, proposals)
    system.engine.run(stop_when=lambda: all(
        system.engine.process(p).crashed or endpoints[p].decided is not None
        for p in pids
    ))
    result = check_consensus(system.engine.trace, pids, system.schedule,
                             proposals)
    rounds = max(result.rounds.values(), default=0)
    return result.ok, {
        "agreement": result.agreement,
        "validity": result.validity,
        "termination": result.termination,
        "decision_time": system.engine.now,
        "rounds": rounds,
    }


def run(seed: int = 801, n: int = 4, crash_at: float = 50.0,
        max_time: float = 6000.0) -> ExperimentResult:
    table = Table(["oracle", "agreement", "validity", "termination",
                   "rounds", "decided by t"], title=TITLE)
    ok_all = True
    for label, use_extraction in (("native ◇P", False), ("extracted ◇P", True)):
        ok, d = _one(seed, n, use_extraction, crash_at, max_time)
        ok_all &= ok
        table.add_row([label, d["agreement"], d["validity"],
                       d["termination"], d["rounds"], d["decision_time"]])
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE, ok=ok_all, table=table,
        notes=[f"coordinator of round 1 crashes at t={crash_at}; consensus "
               "must route around it via suspicion"],
    )
