"""E18 — the [8] setting verbatim: shared-memory obstruction-free STM.

Sections 2–3 discuss contention managers in *shared memory*; footnote 1
notes the paper's results transfer there.  This experiment runs the
DSTM-style obstruction-free transactional memory of
:mod:`repro.apps.dstm` over the atomic-register substrate
(:mod:`repro.sim.shm`):

* raw obstruction-freedom drowns in aborts as contention grows;
* admission through the WF-◇WX contention manager makes every transaction
  commit with almost no aborts (finitely many, from the CM's own mistake
  prefix and suspicion-gated orec stealing);
* serializability — the shared counter equals the global commit count —
  holds in every configuration, including a client crashed mid-transaction
  whose ownership records survivors must steal.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.apps.dstm import SharedMemorySTM
from repro.experiments.common import ExperimentResult
from repro.sim.faults import CrashSchedule

EXP_ID = "E18"
TITLE = "Shared-memory DSTM: CM boosting + serializability (the [8] setting)"


def run(seed: int = 1801, client_counts: tuple[int, ...] = (2, 4, 6),
        tx_target: int = 12, max_time: float = 10000.0) -> ExperimentResult:
    table = Table(["clients", "mode", "committed", "aborted", "abort ratio",
                   "steals", "serializable", "all done"], title=TITLE)
    ok_all = True
    for n in client_counts:
        stm = SharedMemorySTM(n_clients=n, tx_target=tx_target,
                              seed=seed + n, max_time=max_time)
        raw = stm.run(with_cm=False)
        managed = stm.run(with_cm=True)
        for r in (raw, managed):
            table.add_row([n, "with CM" if r.with_cm else "no CM",
                           r.committed, r.aborted, r.abort_ratio(),
                           r.steals, r.serializable(), r.all_done])
        ok_all &= (
            raw.serializable() and managed.serializable()
            and raw.all_done and managed.all_done
            and managed.abort_ratio() < raw.abort_ratio()
        )
        if n >= 4:
            ok_all &= raw.abort_ratio() > 0.3   # contention really bites

    # Crash row: a client dies holding ownership records; survivors steal
    # them via suspicion and still finish, serializably.
    crash_stm = SharedMemorySTM(n_clients=3, tx_target=tx_target, seed=40,
                                max_time=max_time,
                                crash=CrashSchedule.single("c1", 60.0))
    crashed = crash_stm.run(with_cm=False)
    table.add_row(["3 (crash c1)", "no CM", crashed.committed,
                   crashed.aborted, crashed.abort_ratio(), crashed.steals,
                   crashed.serializable(), crashed.all_done])
    ok_all &= (crashed.serializable() and crashed.all_done
               and crashed.steals > 0)
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE, ok=ok_all, table=table,
        notes=["serializable = shared counter equals global commit count; "
               "steals reclaim ownership records of suspected (crashed) "
               "owners — a wrongly-stolen live owner's publication fails "
               "validation, so safety never depends on suspicion accuracy"],
    )
