"""E15 — distributional view: reduction convergence across seed sweeps.

Single-run tables (E2/E3) establish the qualitative claims; this sweep
characterizes the *distributions*: across 8 seeds and both black boxes,
the extracted detector's accuracy-convergence time and crash-detection
latency, plus per-run mistake counts (all finite).
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.analysis.stats import sweep_many
from repro.core.extraction import build_full_extraction
from repro.experiments.common import BOX_BUILDERS, build_system
from repro.experiments.common import ExperimentResult
from repro.oracles.properties import (
    check_eventual_strong_accuracy,
    check_strong_completeness,
    false_positive_count,
)
from repro.sim.faults import CrashSchedule

EXP_ID = "E15"
TITLE = "Statistics: extraction convergence across seeds (both boxes)"


def _metrics(seed: int, box_name: str, crash_at: float,
             max_time: float) -> dict:
    # Accuracy run.
    system = build_system(["p", "q"], seed=seed, max_time=max_time)
    build_full_extraction(system.engine, ["p", "q"],
                          BOX_BUILDERS[box_name](system),
                          monitors=[("p", "q")])
    system.engine.run()
    acc = check_eventual_strong_accuracy(
        system.engine.trace, ["p"], ["q"], system.schedule,
        detector="extracted")
    mistakes = false_positive_count(system.engine.trace, "p", "q",
                                    system.schedule, detector="extracted")
    # Completeness run.
    sched = CrashSchedule.single("q", crash_at)
    system2 = build_system(["p", "q"], seed=seed + 5000, max_time=max_time,
                           crash=sched)
    build_full_extraction(system2.engine, ["p", "q"],
                          BOX_BUILDERS[box_name](system2),
                          monitors=[("p", "q")])
    system2.engine.run()
    comp = check_strong_completeness(
        system2.engine.trace, ["p"], ["q"], sched, detector="extracted")
    return {
        "accuracy_conv": acc.convergence if acc.ok else None,
        "detect_latency": (comp.convergence - crash_at
                           if comp.ok and comp.convergence else None),
        "mistakes": float(mistakes),
        "acc_ok": 1.0 if acc.ok else 0.0,
        "comp_ok": 1.0 if comp.ok else 0.0,
    }


def run(base_seed: int = 1500, n_seeds: int = 8, crash_at: float = 700.0,
        max_time: float = 2200.0) -> ExperimentResult:
    table = Table(["box", "metric", "mean ± std [min, max] (n)"],
                  title=TITLE)
    ok_all = True
    seeds = range(base_seed, base_seed + n_seeds)
    for box_name in ("wf", "deferred"):
        stats = sweep_many(
            lambda seed: _metrics(seed, box_name, crash_at, max_time),
            list(seeds),
        )
        # Every run converged on both properties.
        ok_all &= stats["acc_ok"].mean == 1.0 and stats["acc_ok"].n == n_seeds
        ok_all &= stats["comp_ok"].mean == 1.0
        ok_all &= stats["mistakes"].max <= 10.0
        for metric in ("accuracy_conv", "detect_latency", "mistakes"):
            table.add_row([box_name, metric, stats[metric].summary()])
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE, ok=ok_all, table=table,
        notes=[f"{n_seeds} seeds per box; accuracy and completeness "
               "converged in every single run; mistakes always finite"],
    )
