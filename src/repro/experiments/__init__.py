"""Experiment harnesses: one module per paper artifact (see DESIGN.md §4).

Each experiment exposes ``run(**params) -> ExperimentResult`` and is invoked
both by its ``benchmarks/test_eNN_*.py`` wrapper and by the CLI
(``python -m repro run e4``).  Results carry paper-style table rows plus an
overall ``ok`` verdict asserting the paper's qualitative claim.
"""

from repro.experiments import (
    e01_figure1,
    e02_completeness,
    e03_accuracy,
    e04_flawed_cm,
    e05_liveness,
    e06_fairness,
    e07_trusting,
    e08_consensus,
    e09_wsn,
    e10_stm,
    e11_native_oracle,
    e12_overhead,
    e13_fair_wrapper,
    e14_adversary,
    e15_statistics,
    e16_locality,
    e17_replication,
    e18_dstm,
    e19_asynchrony,
)
from repro.experiments.common import ExperimentResult

REGISTRY = {
    "e1": e01_figure1,
    "e2": e02_completeness,
    "e3": e03_accuracy,
    "e4": e04_flawed_cm,
    "e5": e05_liveness,
    "e6": e06_fairness,
    "e7": e07_trusting,
    "e8": e08_consensus,
    "e9": e09_wsn,
    "e10": e10_stm,
    "e11": e11_native_oracle,
    "e12": e12_overhead,
    "e13": e13_fair_wrapper,
    "e14": e14_adversary,
    "e15": e15_statistics,
    "e16": e16_locality,
    "e17": e17_replication,
    "e18": e18_dstm,
    "e19": e19_asynchrony,
}

__all__ = ["ExperimentResult", "REGISTRY"]
