"""E19 — the equivalence cuts both ways: no ◇P, no WF-◇WX.

The paper's result says wait-free ◇WX dining and ◇P encapsulate the *same*
temporal assumptions.  The constructive direction is E1–E8; this
experiment exhibits the impossibility direction's symptom: in a genuinely
asynchronous network (channel outages growing faster than any adaptive
timeout backs off — :class:`~repro.sim.adversary.OutageDelays`),

* the heartbeat detector's wrongful suspicions never stop accruing
  (◇P unimplementable — eventual strong accuracy fails at every horizon);
* correspondingly, the ◇P-based dining box never reaches an exclusive
  suffix — violations keep growing with run length, with the last one
  always near the end of the run (it is *not* a WF-◇WX solution here,
  exactly as the equivalence demands).

A control row under GST partial synchrony (same seeds) converges on both
counts.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.dining.client import EagerClient
from repro.dining.spec import check_exclusion
from repro.dining.wf_ewx import WaitFreeEWXDining
from repro.experiments.common import ExperimentResult
from repro.graphs import pair_graph
from repro.oracles import EventuallyPerfectDetector, attach_detectors
from repro.oracles.properties import false_positive_count
from repro.sim import Engine, PartialSynchronyDelays, SimConfig
from repro.sim.adversary import OutageDelays
from repro.sim.faults import CrashSchedule

EXP_ID = "E19"
TITLE = "Asynchronous impossibility: detector mistakes and exclusion " \
        "violations never stop"


def _one(seed: int, horizon: float, asynchronous: bool) -> dict:
    pids = ["p", "q"]
    model = (OutageDelays() if asynchronous
             else PartialSynchronyDelays(gst=120.0, delta=1.5,
                                         pre_gst_max=25.0))
    eng = Engine(SimConfig(seed=seed, max_time=horizon), delay_model=model)
    for pid in pids:
        eng.add_process(pid)
    mods = attach_detectors(
        eng, pids,
        lambda o, peers: EventuallyPerfectDetector(
            "fd", peers, heartbeat_period=4, initial_timeout=10),
    )
    g = pair_graph("p", "q")
    inst = WaitFreeEWXDining(
        "DX", g, lambda pid: (lambda x, m=mods[pid]: m.suspected(x)))
    diners = inst.attach(eng)
    for pid in pids:
        eng.process(pid).add_component(
            EagerClient("cl", diners[pid], eat_steps=2))
    eng.run()
    sched = CrashSchedule.none()
    mistakes = sum(
        false_positive_count(eng.trace, a, b, sched, detector="fd")
        for a in pids for b in pids if a != b
    )
    excl = check_exclusion(eng.trace, g, "DX", sched, eng.now)
    return {
        "mistakes": mistakes,
        "violations": excl.count,
        "last_violation": excl.last_violation_end,
        "end": eng.now,
    }


def run(seed: int = 1901,
        horizons: tuple[float, ...] = (2000.0, 5000.0, 12000.0)
        ) -> ExperimentResult:
    table = Table(["network", "horizon", "detector mistakes",
                   "exclusion violations", "last violation"], title=TITLE)
    async_rows = []
    for horizon in horizons:
        r = _one(seed, horizon, asynchronous=True)
        async_rows.append(r)
        table.add_row(["asynchronous", horizon, r["mistakes"],
                       r["violations"], r["last_violation"]])
    control = _one(seed, horizons[0], asynchronous=False)
    table.add_row(["partial synchrony", horizons[0], control["mistakes"],
                   control["violations"], control["last_violation"]])

    mistakes_grow = all(
        a["mistakes"] < b["mistakes"]
        for a, b in zip(async_rows, async_rows[1:])
    )
    violations_grow = all(
        a["violations"] < b["violations"]
        for a, b in zip(async_rows, async_rows[1:])
    )
    never_converges = all(
        r["last_violation"] is not None
        and r["last_violation"] > 0.75 * r["end"]
        for r in async_rows
    )
    control_converges = (
        control["last_violation"] is None
        or control["last_violation"] < 0.3 * control["end"]
    )
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE,
        ok=(mistakes_grow and violations_grow and never_converges
            and control_converges),
        table=table,
        notes=["asynchronous = channel outages growing 2.4x per episode, "
               "outpacing the detector's 2x adaptive backoff; under partial "
               "synchrony the identical system converges — the equivalence "
               "predicts exactly this pairing of symptoms"],
    )
