"""Shared scaffolding for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import networkx as nx

from repro.analysis.report import Table
from repro.dining.base import DiningInstance, SuspicionProvider
from repro.dining.deferred import DeferredExclusionDining
from repro.dining.manager import ManagerDining
from repro.dining.wf_ewx import WaitFreeEWXDining
from repro.oracles import EventuallyPerfectDetector, attach_detectors
from repro.oracles.base import OracleModule
from repro.oracles.perfect import PerfectDetector
from repro.sim.engine import Engine, SimConfig
from repro.sim.faults import CrashSchedule
from repro.sim.link_faults import LinkFaultModel
from repro.sim.network import DelayModel, PartialSynchronyDelays
from repro.sim.transport import ReliableTransport, RetransmitPolicy
from repro.types import ProcessId, Time


@dataclass
class ExperimentResult:
    """One experiment's outcome: a verdict, a table, and raw data."""

    exp_id: str
    title: str
    ok: bool
    table: Table
    notes: list[str] = field(default_factory=list)
    data: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        parts = [f"[{self.exp_id}] {self.title} — {verdict}", "",
                 self.table.render()]
        if self.notes:
            parts += [""] + [f"note: {n}" for n in self.notes]
        return "\n".join(parts)


@dataclass
class System:
    """A built simulation: engine plus the box-internal oracle plumbing."""

    engine: Engine
    pids: list[ProcessId]
    schedule: CrashSchedule
    box_modules: dict[ProcessId, OracleModule]
    provider: SuspicionProvider
    transport: "ReliableTransport | None" = None


def build_system(
    pids: Sequence[ProcessId],
    seed: int,
    gst: Time = 150.0,
    max_time: Time = 3000.0,
    crash: CrashSchedule | None = None,
    delta: Time = 1.5,
    pre_gst_max: Time = 30.0,
    heartbeat_period: int = 4,
    initial_timeout: int = 10,
    oracle: str = "hb",
    delay_model: "DelayModel | None" = None,
    fault_model: "LinkFaultModel | None" = None,
    transport: "bool | RetransmitPolicy" = False,
) -> System:
    """Engine + per-process box-internal oracle (``"hb"`` heartbeat ◇P or
    ``"perfect"`` P substrate) + the suspicion provider dining boxes use.

    ``delay_model`` overrides the default GST channel model (e.g. to wrap
    it in adversarial :class:`~repro.sim.adversary.TargetedDelays`).
    ``fault_model`` makes the wire fair-lossy; pass ``transport=True`` (or
    a :class:`~repro.sim.transport.RetransmitPolicy`) to restore reliable
    channels over it, so algorithms keep their Section 4 assumptions.
    """
    schedule = crash or CrashSchedule.none()
    engine = Engine(
        SimConfig(seed=seed, max_time=max_time),
        delay_model=delay_model or PartialSynchronyDelays(
            gst=gst, delta=delta, pre_gst_max=pre_gst_max),
        crash_schedule=schedule,
        fault_model=fault_model,
    )
    installed: ReliableTransport | None = None
    if transport:
        policy = transport if isinstance(transport, RetransmitPolicy) else None
        installed = ReliableTransport(policy).install(engine)
    for pid in pids:
        engine.add_process(pid)
    if oracle == "hb":
        modules = attach_detectors(
            engine, list(pids),
            lambda o, peers: EventuallyPerfectDetector(
                "boxfd", peers, heartbeat_period=heartbeat_period,
                initial_timeout=initial_timeout),
        )
    elif oracle == "perfect":
        modules = attach_detectors(
            engine, list(pids),
            lambda o, peers: PerfectDetector("boxfd", peers, schedule,
                                             latency=5.0),
        )
    else:
        raise ValueError(f"unknown oracle kind {oracle!r}")

    def provider(pid: ProcessId):
        module = modules[pid]
        return lambda q: module.suspected(q)

    return System(engine=engine, pids=list(pids), schedule=schedule,
                  box_modules=modules, provider=provider, transport=installed)


def wf_box(system: System) -> Callable[[str, nx.Graph], DiningInstance]:
    """The well-behaved WF-◇WX black box bound to the system's oracle."""
    return lambda iid, g: WaitFreeEWXDining(iid, g, system.provider)


def deferred_box(system: System,
                 horizon: Time = 150.0) -> Callable[[str, nx.Graph], DiningInstance]:
    """The adversarial-but-legal WF-◇WX black box (Section 3)."""
    return lambda iid, g: DeferredExclusionDining(
        iid, g, system.provider, mistake_horizon=horizon
    )


def manager_box(system: System) -> Callable[[str, nx.Graph], DiningInstance]:
    """The coordinator-based WF-◇WX black box (migrating manager role)."""
    return lambda iid, g: ManagerDining(iid, g, system.provider)


BOX_BUILDERS = {"wf": wf_box, "deferred": deferred_box, "manager": manager_box}
