"""Shared scaffolding for the experiment harnesses.

All engine/oracle/transport construction lives in the canonical runtime
builder (:mod:`repro.runtime.builder`); this module re-exports
:func:`build_system` and :class:`System` from there so the twenty
experiment harnesses keep their historical import path, and adds only the
experiment-specific bits: the result record and the black-box dining
factories the reduction experiments parameterize over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import networkx as nx

from repro.analysis.report import Table
from repro.dining.base import DiningInstance
from repro.dining.deferred import DeferredExclusionDining
from repro.dining.manager import ManagerDining
from repro.dining.wf_ewx import WaitFreeEWXDining
from repro.runtime.builder import System, build_system
from repro.types import Time

__all__ = [
    "BOX_BUILDERS",
    "ExperimentResult",
    "System",
    "build_system",
    "deferred_box",
    "manager_box",
    "wf_box",
]


@dataclass
class ExperimentResult:
    """One experiment's outcome: a verdict, a table, and raw data."""

    exp_id: str
    title: str
    ok: bool
    table: Table
    notes: list[str] = field(default_factory=list)
    data: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        parts = [f"[{self.exp_id}] {self.title} — {verdict}", "",
                 self.table.render()]
        if self.notes:
            parts += [""] + [f"note: {n}" for n in self.notes]
        return "\n".join(parts)


def wf_box(system: System) -> Callable[[str, nx.Graph], DiningInstance]:
    """The well-behaved WF-◇WX black box bound to the system's oracle."""
    return lambda iid, g: WaitFreeEWXDining(iid, g, system.provider)


def deferred_box(system: System,
                 horizon: Time = 150.0) -> Callable[[str, nx.Graph], DiningInstance]:
    """The adversarial-but-legal WF-◇WX black box (Section 3)."""
    return lambda iid, g: DeferredExclusionDining(
        iid, g, system.provider, mistake_horizon=horizon
    )


def manager_box(system: System) -> Callable[[str, nx.Graph], DiningInstance]:
    """The coordinator-based WF-◇WX black box (migrating manager role)."""
    return lambda iid, g: ManagerDining(iid, g, system.provider)


BOX_BUILDERS = {"wf": wf_box, "deferred": deferred_box, "manager": manager_box}
