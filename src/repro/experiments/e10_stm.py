"""E10 — Sections 2-3: contention management boosts obstruction-free STM.

Paper claims: a wait-free ◇WX contention manager funnels a high-contention
system into a contention-free one — every pending transaction eventually
commits (wait-freedom), and after the CM's exclusive suffix begins,
transactions stop aborting.  Without the CM, obstruction-freedom alone
leaves abort counts growing with contention.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.apps.stm import ContentionManagedSTM
from repro.experiments.common import ExperimentResult

EXP_ID = "E10"
TITLE = "Contention manager boosts obstruction-free STM to wait-freedom"


def run(seed: int = 1001, client_counts: tuple[int, ...] = (2, 4, 6),
        tx_target: int = 12, max_time: float = 12000.0) -> ExperimentResult:
    table = Table(["clients", "mode", "committed", "aborted", "abort ratio",
                   "max retries", "all done"], title=TITLE)
    ok_all = True
    for n in client_counts:
        stm = ContentionManagedSTM(n_clients=n, tx_target=tx_target,
                                   seed=seed + n, max_time=max_time)
        raw = stm.run(with_cm=False)
        managed = stm.run(with_cm=True)
        for r in (raw, managed):
            table.add_row([n, "with CM" if r.with_cm else "no CM",
                           r.committed, r.aborted, r.abort_ratio(),
                           r.max_retries, r.all_done])
        ok_all &= (
            managed.all_done
            and managed.abort_ratio() <= raw.abort_ratio()
            and managed.max_retries <= raw.max_retries
        )
        if n >= 4:
            # Under real contention the CM's advantage must be strict.
            ok_all &= raw.aborted > managed.aborted
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE, ok=ok_all, table=table,
        notes=["all clients share one object (clique conflict graph); "
               "'no CM' is raw obstruction-freedom with retries"],
    )
