"""E9 — Section 2: WSN duty-cycle scheduling under ◇WX.

Paper claims: with a wait-free ◇WX duty scheduler, (a) the network
outlives the always-on baseline (rotation conserves energy), (b) coverage
is maintained despite node crashes (wait-freedom), and (c) scheduling
mistakes are finite — they only cost redundant coverage, never
correctness.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.apps.wsn import WSNExperiment
from repro.experiments.common import ExperimentResult

EXP_ID = "E9"
TITLE = "WSN duty cycling: ◇WX rotation vs always-on baseline"


def run(seeds: tuple[int, ...] = (901, 902), rows: int = 3, cols: int = 3,
        battery: float = 300.0, max_time: float = 1800.0) -> ExperimentResult:
    table = Table(["seed", "scheduler", "lifetime", "mean coverage",
                   "redundant duty", "last redundancy", "deaths"],
                  title=TITLE)
    ok_all = True
    for seed in seeds:
        exp = WSNExperiment(rows=rows, cols=cols, seed=seed, battery=battery,
                            max_time=max_time)
        base = exp.run_always_on()
        dining = exp.run_dining()
        aware = exp.run_coverage_aware()
        for r in (base, dining, aware):
            table.add_row([seed, r.scheduler, r.lifetime, r.mean_coverage,
                           r.redundancy_violations, r.last_redundancy,
                           len(r.crash_times)])
        longer_life = (dining.lifetime > 1.5 * base.lifetime
                       and aware.lifetime > 1.5 * base.lifetime)
        finite_mistakes = all(
            r.last_redundancy is None or r.last_redundancy < max_time * 0.9
            for r in (dining, aware)
        )
        ok_all &= longer_life and finite_mistakes
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE, ok=ok_all, table=table,
        notes=["lifetime = last time >= 75% of cells were covered; redundant "
               "duty events are the scheduler's ◇WX mistakes; cover-aware "
               "nodes volunteer only while they believe their cell is "
               "uncovered (beacon gossip)"],
    )
