"""E4 — Section 3: the construction of [8] is not universal; ours is.

Three sub-runs over the *same* ordered pair (p monitors correct q):

1. the [8] single-instance construction over the **adversarial** (deferred-
   exclusion) box — the subject parks in its critical section forever, the
   box legally keeps admitting the witness, and the extracted detector
   suspects the correct ``q`` again and again: wrongful suspicions grow
   with run length (◇P accuracy violated);
2. the [8] construction over the **well-behaved** box — converges (the
   construction is not *wrong* on friendly boxes, just not black-box);
3. **this paper's reduction** over the same adversarial box — converges,
   with finitely many mistakes independent of run length.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.core.extraction import build_full_extraction
from repro.core.flawed_cm import FlawedCMPair
from repro.experiments.common import (
    ExperimentResult,
    build_system,
    deferred_box,
    wf_box,
)
from repro.oracles.properties import false_positive_count, suspicion_series
from repro.sim.temporal import convergence_time

EXP_ID = "E4"
TITLE = "Section 3: [8]'s construction fails on a legal box; ours survives"


def _run_flawed(seed: int, box_kind: str, max_time: float,
                horizon: float) -> tuple[int, bool]:
    """Run the [8] construction; return (wrongful suspicions, converged)."""
    system = build_system(["p", "q"], seed=seed, gst=100.0, max_time=max_time)
    box = (deferred_box(system, horizon=horizon) if box_kind == "deferred"
           else wf_box(system))
    FlawedCMPair("p", "q", box).attach(system.engine)
    system.engine.run()
    trace = system.engine.trace
    mistakes = false_positive_count(trace, "p", "q", system.schedule,
                                    detector="flawed")
    series = suspicion_series(trace, "p", "q", detector="flawed")
    converged = convergence_time(series, lambda s: not s) is not None
    return mistakes, converged


def _run_ours(seed: int, max_time: float, horizon: float) -> tuple[int, bool]:
    """Run this paper's reduction over the adversarial box."""
    system = build_system(["p", "q"], seed=seed, gst=100.0, max_time=max_time)
    build_full_extraction(system.engine, ["p", "q"],
                          deferred_box(system, horizon=horizon),
                          monitors=[("p", "q")])
    system.engine.run()
    trace = system.engine.trace
    mistakes = false_positive_count(trace, "p", "q", system.schedule,
                                    detector="extracted")
    series = suspicion_series(trace, "p", "q", detector="extracted")
    converged = convergence_time(series, lambda s: not s) is not None
    return mistakes, converged


def run(seed: int = 401, short: float = 1500.0, long: float = 3000.0,
        horizon: float = 150.0) -> ExperimentResult:
    table = Table(["construction", "box", "run length", "wrongful suspicions",
                   "eventually trusts q"], title=TITLE)

    f_short, f_short_conv = _run_flawed(seed, "deferred", short, horizon)
    f_long, f_long_conv = _run_flawed(seed, "deferred", long, horizon)
    table.add_row(["[8] flawed", "deferred", short, f_short, f_short_conv])
    table.add_row(["[8] flawed", "deferred", long, f_long, f_long_conv])

    g_mist, g_conv = _run_flawed(seed, "wf", long, horizon)
    table.add_row(["[8] flawed", "wf", long, g_mist, g_conv])

    o_short, o_short_conv = _run_ours(seed, short, horizon)
    o_long, o_long_conv = _run_ours(seed, long, horizon)
    table.add_row(["this paper", "deferred", short, o_short, o_short_conv])
    table.add_row(["this paper", "deferred", long, o_long, o_long_conv])

    vulnerability_shown = (
        not f_long_conv               # flawed: still suspecting in the suffix
        and f_long > f_short          # ... and mistakes grow with run length
        and f_long >= 10              # ... unboundedly, not incidentally
    )
    ours_immune = (
        o_short_conv and o_long_conv
        and o_long == o_short         # mistakes finite: independent of length
    )
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE,
        ok=vulnerability_shown and ours_immune and g_conv,
        table=table,
        notes=["the deferred box is a LEGAL WF-◇WX solution (see "
               "repro/dining/deferred.py); [8]'s detector violates eventual "
               "strong accuracy on it, this paper's does not"],
    )
