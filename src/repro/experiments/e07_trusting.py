"""E7 — Section 9: over a perpetual-WX box the reduction extracts T.

Paper claim: applied to any wait-free *perpetual* weak-exclusion dining
solution, the same reduction extracts the trusting oracle T: strong
completeness plus trusting accuracy (every correct process eventually
permanently trusted; trust, once granted, is revoked only on a real crash).

The perpetual box is the hygienic algorithm with a crash-accurate
suspicion substrate (see ``repro/dining/perpetual.py``); we first verify
the box really had zero exclusion violations, then check the extracted
outputs against the T specification.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.core.trusting_extraction import build_trusting_extraction
from repro.dining.perpetual import PerpetualDining
from repro.dining.spec import check_exclusion
from repro.experiments.common import ExperimentResult, build_system
from repro.oracles.properties import (
    check_strong_completeness,
    check_trusting_accuracy,
)
from repro.sim.faults import CrashSchedule

EXP_ID = "E7"
TITLE = "Section 9: reduction over a perpetual-WX box extracts T"


def run(seed: int = 701, n: int = 3, crash_at: float = 700.0,
        max_time: float = 2500.0) -> ExperimentResult:
    pids = [f"p{i}" for i in range(n)]
    system = build_system(
        pids, seed=seed, max_time=max_time, oracle="perfect",
        crash=CrashSchedule.single(pids[-1], crash_at),
    )
    box = lambda iid, g: PerpetualDining(iid, g, system.provider)  # noqa: E731
    _, pairs = build_trusting_extraction(system.engine, pids, box,
                                         monitor_invariants=True)
    system.engine.run()
    end = system.engine.now
    trace = system.engine.trace

    # The box must actually be perpetually exclusive in this run.
    violations = 0
    for pair in pairs.values():
        for iid, inst in zip(pair.instance_ids(), pair.instances):
            violations += check_exclusion(trace, inst.graph, iid,
                                          system.schedule, end).count
    box_ok = violations == 0

    trust = check_trusting_accuracy(trace, pids, pids, system.schedule,
                                    detector="extractedT")
    comp = check_strong_completeness(trace, pids, pids, system.schedule,
                                     detector="extractedT")

    table = Table(["property", "verdict", "detail"], title=TITLE)
    table.add_row(["box perpetual weak exclusion", box_ok,
                   f"{violations} violations across "
                   f"{2 * len(pairs)} instances"])
    table.add_row(["extracted: trusting accuracy", trust.ok,
                   f"{len(trust.pairs)} ordered pairs"])
    table.add_row(["extracted: strong completeness", comp.ok,
                   f"convergence {comp.convergence}"])
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE, ok=box_ok and trust.ok and comp.ok,
        table=table,
        notes=["trusting accuracy audited every trusted→suspected "
               "transition against the ground-truth crash schedule"],
    )
