"""E6 — Section 8: the two-step construction to eventually fair dining.

Paper claim: from any WF-◇WX solution one can extract ◇P (this paper's
reduction) and feed it to the construction of [13] to obtain WF-◇WX dining
with eventual k-fairness (k ≤ 2).  We run the full composition:

  black-box dining  →  reduction  →  extracted ◇P  →  a NEW dining
  instance (over a clique, with real client workloads) whose suspicion
  source is the extracted oracle

and measure the overtaking statistic of the new instance: after its
exclusive suffix begins, no hungry diner is overtaken by a neighbor more
than k times, for small k.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.core.extraction import build_full_extraction
from repro.dining.client import EagerClient
from repro.dining.fairness import measure_fairness
from repro.dining.spec import check_exclusion, check_wait_freedom
from repro.dining.wf_ewx import WaitFreeEWXDining
from repro.experiments.common import ExperimentResult, build_system, wf_box
from repro.graphs import clique

EXP_ID = "E6"
TITLE = "Section 8: extracted ◇P drives eventually k-fair dining (k <= 2)"


def run(seed: int = 601, n: int = 3, max_time: float = 3000.0,
        washout: float = 250.0, k: int = 2) -> ExperimentResult:
    pids = [f"p{i}" for i in range(n)]
    system = build_system(pids, seed=seed, gst=120.0, max_time=max_time)

    # Step 1: the reduction over the black box -> extracted ◇P.
    detectors, _ = build_full_extraction(system.engine, pids, wf_box(system))

    # Step 2: a fresh dining instance whose oracle is the EXTRACTED detector.
    app_graph = clique(n)
    app = WaitFreeEWXDining(
        "APP", app_graph,
        lambda pid: (lambda q, d=detectors[pid]: d.suspected(q)),
    )
    diners = app.attach(system.engine)
    for pid in pids:
        system.engine.process(pid).add_component(
            EagerClient("client", diners[pid], eat_steps=2)
        )
    system.engine.run()
    end = system.engine.now
    trace = system.engine.trace

    excl = check_exclusion(trace, app_graph, "APP", system.schedule, end)
    conv = excl.last_violation_end or 0.0
    wf = check_wait_freedom(trace, app_graph, "APP", system.schedule, end,
                            grace=100.0)
    fairness = measure_fairness(trace, app_graph, "APP", end, system.schedule)
    worst_suffix = fairness.worst_after(conv + washout)
    worst_all = fairness.worst_overall()

    table = Table(["property", "value", "verdict"], title=TITLE)
    ok_wf = wf.ok
    ok_excl = excl.eventually_exclusive_by(end * 0.6)
    ok_fair = worst_suffix <= k
    table.add_row(["wait-freedom of composed instance", wf.max_wait, ok_wf])
    table.add_row(["◇WX of composed instance (last violation)",
                   excl.last_violation_end, ok_excl])
    table.add_row([f"eventual {k}-fairness (worst suffix overtaking)",
                   worst_suffix, ok_fair])
    table.add_row(["worst overtaking over whole run (may exceed k)",
                   worst_all, True])

    sessions = ", ".join(f"{p}:{wf.sessions[p]}" for p in pids)
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE, ok=ok_wf and ok_excl and ok_fair,
        table=table,
        notes=[f"eating sessions in composed instance: {sessions}",
               f"suffix checked from t={conv + washout:.1f}"],
    )
