"""E20 — Section 5.1: why the reduction needs two dining instances.

The paper first sketches a single-instance construction (witness trusts
iff a ping arrived since its last meal; subject pings once per meal) and
rejects it: nothing stops the witness from eating many times between two
subject meals — WF-◇WX guarantees no fairness — so the witness may suspect
a correct subject forever.

This experiment reproduces that argument end-to-end on the *standard*
black box: whenever the subject lingers in its exit→think→hungry gap the
box happily serves the witness again, so the preliminary detector's
wrongful suspicions grow linearly with run length and never converge.  The
paper's two-instance reduction on the very same box converges with O(1)
mistakes — the subjects' overlapping hand-off keeps one of them eating at
all times, throttling the witnesses no matter how the box schedules.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.core.extraction import build_full_extraction
from repro.core.preliminary import PreliminaryPair
from repro.experiments.common import ExperimentResult, build_system, wf_box
from repro.oracles.properties import false_positive_count, suspicion_series

EXP_ID = "E20"
TITLE = "Section 5.1 ablation: one dining instance is not enough"


def _one(seed: int, horizon: float, construction: str) -> tuple[int, float]:
    system = build_system(["p", "q"], seed=seed, max_time=horizon)
    if construction == "preliminary":
        PreliminaryPair("p", "q", wf_box(system)).attach(system.engine)
        label = "prelim"
    else:
        build_full_extraction(system.engine, ["p", "q"], wf_box(system),
                              monitors=[("p", "q")])
        label = "extracted"
    system.engine.run()
    trace = system.engine.trace
    mistakes = false_positive_count(trace, "p", "q", system.schedule,
                                    detector=label)
    series = suspicion_series(trace, "p", "q", detector=label)
    # A flapping series may happen to end on "trusted", so the honest
    # statistic is WHEN the last wrongful suspicion started.
    last_wrongful = max((t for t, suspected in series if suspected),
                        default=0.0)
    return mistakes, last_wrongful


def run(seed: int = 2001,
        horizons: tuple[float, ...] = (1500.0, 3000.0, 6000.0)
        ) -> ExperimentResult:
    table = Table(["construction", "run length", "wrongful suspicions",
                   "last wrongful suspicion"], title=TITLE)
    prelim_rows = []
    for horizon in horizons:
        mk, last = _one(seed, horizon, "preliminary")
        prelim_rows.append((mk, last, horizon))
        table.add_row(["single instance (Sec. 5.1)", horizon, mk, last])
    paper_rows = []
    for horizon in (horizons[0], horizons[-1]):
        mk, last = _one(seed, horizon, "paper")
        paper_rows.append((mk, last, horizon))
        table.add_row(["two instances (the paper)", horizon, mk, last])

    prelim_grows = all(a[0] < b[0] for a, b in zip(prelim_rows,
                                                   prelim_rows[1:]))
    # Mistakes track the horizon: no convergence at any tested length.
    prelim_never_converges = all(last > 0.8 * horizon
                                 for _, last, horizon in prelim_rows)
    paper_bounded = (
        paper_rows[0][0] == paper_rows[-1][0]       # length-independent
        and all(last < 0.2 * horizon for _, last, horizon in paper_rows)
    )
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE,
        ok=prelim_grows and prelim_never_converges and paper_bounded,
        table=table,
        notes=["same black box, same seeds: the single-instance sketch "
               "accrues mistakes every time the witness slips in an extra "
               "meal during the subject's exit→think→hungry gap; the "
               "hand-off of the two-instance reduction makes that "
               "impossible once exclusion holds"],
    )
