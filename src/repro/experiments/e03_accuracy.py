"""E3 — Theorem 2: eventual strong accuracy of the extracted detector.

Paper claim: for *any* black-box WF-◇WX solution, a correct subject is
eventually and permanently trusted by every correct witness; only finitely
many wrongful suspicions occur.  We sweep the network's stabilization time
(GST) over both black boxes.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.core.extraction import build_full_extraction
from repro.experiments.common import BOX_BUILDERS, ExperimentResult, build_system
from repro.oracles.properties import (
    check_eventual_strong_accuracy,
    false_positive_count,
)

EXP_ID = "E3"
TITLE = "Theorem 2: eventual strong accuracy (correct => eventually trusted)"


def run(seed: int = 301,
        gsts: tuple[float, ...] = (80.0, 400.0),
        boxes: tuple[str, ...] = ("wf", "deferred", "manager"),
        n: int = 3,
        max_time: float = 3000.0) -> ExperimentResult:
    table = Table(["box", "gst", "converged", "convergence time",
                   "total mistakes"], title=TITLE)
    all_ok = True
    for box_name in boxes:
        for k, gst in enumerate(gsts):
            pids = [f"p{i}" for i in range(n)]
            system = build_system(pids, seed=seed + k, gst=gst,
                                  max_time=max_time)
            box = BOX_BUILDERS[box_name](system)
            build_full_extraction(system.engine, pids, box)
            system.engine.run()
            trace = system.engine.trace
            report = check_eventual_strong_accuracy(
                trace, pids, pids, system.schedule, detector="extracted"
            )
            mistakes = sum(
                false_positive_count(trace, p, q, system.schedule,
                                     detector="extracted")
                for p in pids for q in pids if p != q
            )
            all_ok &= report.ok
            table.add_row([box_name, gst, report.ok, report.convergence,
                           mistakes])
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE, ok=all_ok, table=table,
        notes=["mistakes include each pair's initial suspicion (the paper's "
               "algorithm starts with suspect_q = true)"],
    )
