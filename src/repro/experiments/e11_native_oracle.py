"""E11 — Section 4 / [3]: the native heartbeat ◇P under partial synchrony.

Validates the sufficiency-side substrate: the heartbeat/adaptive-timeout
implementation of ◇P satisfies strong completeness and eventual strong
accuracy in a GST partial-synchrony network, with mistake counts that are
finite and convergence that tracks GST.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.experiments.common import ExperimentResult, build_system
from repro.oracles.properties import (
    check_eventual_strong_accuracy,
    check_strong_completeness,
    false_positive_count,
)
from repro.sim.faults import CrashSchedule

EXP_ID = "E11"
TITLE = "Native heartbeat ◇P: completeness, accuracy, finite mistakes"


def run(seed: int = 1101, n: int = 3,
        gsts: tuple[float, ...] = (100.0, 400.0, 800.0),
        crash_at: float = 1200.0,
        max_time: float = 2500.0) -> ExperimentResult:
    table = Table(["gst", "completeness", "accuracy", "accuracy conv",
                   "mistakes"], title=TITLE)
    ok_all = True
    for k, gst in enumerate(gsts):
        pids = [f"p{i}" for i in range(n)]
        system = build_system(
            pids, seed=seed + k, gst=gst, max_time=max_time,
            crash=CrashSchedule.single(pids[-1], crash_at),
            initial_timeout=8, heartbeat_period=6, pre_gst_max=60.0,
        )
        system.engine.run()
        trace = system.engine.trace
        comp = check_strong_completeness(trace, pids, pids, system.schedule,
                                         detector="boxfd")
        acc = check_eventual_strong_accuracy(trace, pids, pids,
                                             system.schedule,
                                             detector="boxfd")
        mistakes = sum(
            false_positive_count(trace, p, q, system.schedule,
                                 detector="boxfd")
            for p in pids for q in pids if p != q
        )
        ok_all &= comp.ok and acc.ok
        table.add_row([gst, comp.ok, acc.ok, acc.convergence, mistakes])
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE, ok=ok_all, table=table,
        notes=["accuracy convergence is bounded by GST plus the adaptive "
               "timeout's settling; mistakes stay finite in every run"],
    )
