"""E16 — failure locality: how far does one crash reach?

The paper builds on crash-locality results for dining ([11]: ◇P gives
crash-locality-1 for *perpetual* exclusion).  This experiment makes the
motivation concrete on a chain conflict graph: without a failure detector,
one crash starves processes at *unbounded* distance (a hungry-forever diner
pins its other fork clean, starving its next neighbor, and so on down the
chain); with the ◇P-based WF-◇WX algorithm nobody starves — the impact is a
transient delay at distance 1.
"""

from __future__ import annotations

import networkx as nx

from repro.analysis.report import Table
from repro.dining.client import EagerClient
from repro.dining.hygienic import HygienicDining
from repro.dining.spec import hungry_intervals
from repro.dining.wf_ewx import WaitFreeEWXDining
from repro.experiments.common import ExperimentResult, build_system
from repro.graphs import path
from repro.sim.faults import CrashSchedule

EXP_ID = "E16"
TITLE = "Failure locality: crash impact radius, hygienic vs ◇P dining"
INSTANCE = "CHAIN"


def _run(seed: int, algorithm: str, n: int, crash_at: float,
         max_time: float):
    g = path(n)
    pids = sorted(g.nodes)
    victim = pids[0]
    system = build_system(pids, seed=seed, max_time=max_time,
                          crash=CrashSchedule.single(victim, crash_at))
    if algorithm == "hygienic":
        inst = HygienicDining(INSTANCE, g)
    else:
        inst = WaitFreeEWXDining(INSTANCE, g, system.provider)
    diners = inst.attach(system.engine)
    for pid in pids:
        system.engine.process(pid).add_component(
            EagerClient("cl", diners[pid], eat_steps=2))
    system.engine.run()
    eng = system.engine

    dist = nx.single_source_shortest_path_length(g, victim)
    rows = []
    for pid in pids[1:]:
        ivs = [iv for iv in hungry_intervals(eng.trace, INSTANCE, pid, eng.now)
               if iv[1] > crash_at]
        max_wait = max((b - a for a, b in ivs), default=0.0)
        # Starving: still hungry at the end with hunger from long before.
        starving = bool(ivs) and ivs[-1][1] >= eng.now and \
            ivs[-1][0] < eng.now - 300.0
        rows.append((dist[pid], pid, starving, max_wait))
    return rows


def run(seed: int = 1601, n: int = 6, crash_at: float = 200.0,
        max_time: float = 2500.0) -> ExperimentResult:
    table = Table(["algorithm", "distance from crash", "process", "starves",
                   "max hungry wait"], title=TITLE)
    hygienic = _run(seed, "hygienic", n, crash_at, max_time)
    wf = _run(seed, "wf-ewx", n, crash_at, max_time)
    for algorithm, rows in (("hygienic", hygienic), ("wf-ewx", wf)):
        for d, pid, starving, wait in rows:
            table.add_row([algorithm, d, pid, starving, wait])

    hygienic_far_starvation = any(
        starving for d, _, starving, _ in hygienic if d >= 2
    )
    wf_nobody_starves = not any(starving for _, _, starving, _ in wf)
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE,
        ok=hygienic_far_starvation and wf_nobody_starves,
        table=table,
        notes=["chain graph p0-p1-...-p5; p0 crashes at "
               f"t={crash_at}; starvation under the hygienic baseline "
               "propagates down the chain, the ◇P algorithm confines the "
               "impact to a transient delay"],
    )
