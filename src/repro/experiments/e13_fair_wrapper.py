"""E13 — ablation: the Section 8 fairness transformation, k sweep.

Section 8 implies an asynchronous transformation from any WF-◇WX solution
to an eventually k-fair one (via the extracted ◇P and the construction of
[13]).  :mod:`repro.dining.fair_wrapper` implements such a wrapper; this
ablation sweeps the overtake budget ``k``, measuring

* the suffix overtaking bound actually achieved (must be ≤ k),
* preserved wait-freedom and ◇WX,
* the throughput price of fairness (total eating sessions shrink as the
  budget tightens).
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.dining.client import EagerClient
from repro.dining.fair_wrapper import FairDining
from repro.dining.fairness import measure_fairness
from repro.dining.spec import check_exclusion, check_wait_freedom
from repro.dining.wf_ewx import WaitFreeEWXDining
from repro.experiments.common import ExperimentResult, build_system
from repro.graphs import clique

EXP_ID = "E13"
TITLE = "Ablation: eventually k-fair wrapper (Section 8 / [13]) — k sweep"
INSTANCE = "FAIR"


def _one(seed: int, k: int | None, n: int, max_time: float, washout: float):
    g = clique(n)
    pids = sorted(g.nodes)
    system = build_system(pids, seed=seed, max_time=max_time)
    inner = lambda iid, gr: WaitFreeEWXDining(iid, gr, system.provider)  # noqa: E731
    if k is None:
        diners = inner(INSTANCE, g).attach(system.engine)
    else:
        inst = FairDining(INSTANCE, g, inner, system.provider, k=k)
        diners = inst.attach(system.engine)
    for pid in pids:
        system.engine.process(pid).add_component(
            EagerClient("cl", diners[pid], eat_steps=2))
    system.engine.run()
    eng = system.engine
    wf = check_wait_freedom(eng.trace, g, INSTANCE, system.schedule, eng.now,
                            grace=150.0)
    excl = check_exclusion(eng.trace, g, INSTANCE, system.schedule, eng.now)
    conv = (excl.last_violation_end or 0.0) + washout
    fairness = measure_fairness(eng.trace, g, INSTANCE, eng.now,
                                system.schedule)
    return {
        "wf": wf.ok,
        "ewx": excl.eventually_exclusive_by(eng.now * 0.6),
        "suffix_overtake": fairness.worst_after(conv),
        "overall_overtake": fairness.worst_overall(),
        "sessions": sum(wf.sessions.values()),
    }


def run(seed: int = 1301, ks: tuple[int, ...] = (1, 2, 3), n: int = 3,
        max_time: float = 2500.0, washout: float = 250.0) -> ExperimentResult:
    table = Table(["k", "wait-free", "◇WX", "suffix overtaking",
                   "overall overtaking", "total sessions"], title=TITLE)
    ok_all = True
    sessions_by_k = []
    for k in ks:
        r = _one(seed, k, n, max_time, washout)
        ok_all &= r["wf"] and r["ewx"] and r["suffix_overtake"] <= k
        sessions_by_k.append(r["sessions"])
        table.add_row([k, r["wf"], r["ewx"], r["suffix_overtake"],
                       r["overall_overtake"], r["sessions"]])
    raw = _one(seed, None, n, max_time, washout)
    table.add_row(["(no wrapper)", raw["wf"], raw["ewx"],
                   raw["suffix_overtake"], raw["overall_overtake"],
                   raw["sessions"]])
    # The price of fairness: the tightest budget must cost throughput
    # relative to the loosest.
    ok_all &= sessions_by_k[0] <= sessions_by_k[-1]
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE, ok=ok_all, table=table,
        notes=["suffix overtaking must respect each k; sessions shrink as "
               "the budget tightens (fairness costs throughput)"],
    )
