"""E12 — reduction overhead scaling (our extension; no paper counterpart).

The reduction costs 2 dining instances (plus ping/ack traffic) per ordered
pair, so the full extracted ◇P runs 2·n·(n-1) instances.  Because each
process executes one action per step regardless of how many threads it
hosts, per-pair *throughput* necessarily falls as n grows; the meaningful
unit cost is **messages per witness eating session** — i.e. per sample of
the extracted detector — which should stay flat.  This experiment measures
both, plus the native heartbeat detector's traffic for comparison.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.core.extraction import build_full_extraction
from repro.experiments.common import ExperimentResult, build_system, wf_box
from repro.sim.metrics import collect_metrics

EXP_ID = "E12"
TITLE = "Reduction overhead: cost per extracted-detector sample vs n"


def run(seed: int = 1201, ns: tuple[int, ...] = (2, 3, 4),
        max_time: float = 1200.0) -> ExperimentResult:
    table = Table(["n", "pairs", "messages", "reduction msgs",
                   "witness sessions", "msgs/session", "native fd msgs",
                   "events"], title=TITLE)
    per_sample_cost = []
    for n in ns:
        pids = [f"p{i}" for i in range(n)]
        system = build_system(pids, seed=seed, gst=100.0, max_time=max_time)
        _, pairs = build_full_extraction(system.engine, pids, wf_box(system))
        system.engine.run()
        m = collect_metrics(system.engine)
        n_pairs = n * (n - 1)
        native = m.messages_by_kind.get("hb", 0)
        reduction = m.messages_sent - native
        sessions = sum(
            w.eat_sessions for pair in pairs.values() for w in pair.witnesses
        )
        cost = reduction / max(sessions, 1)
        per_sample_cost.append(cost)
        table.add_row([n, n_pairs, m.messages_sent, reduction, sessions,
                       cost, native, m.events_processed])
    flat = max(per_sample_cost) <= 2.0 * min(per_sample_cost)
    sampled = all(c > 0 for c in per_sample_cost)
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE, ok=flat and sampled, table=table,
        notes=["a witness eating session is one refresh of the extracted "
               "suspicion bit; its message cost (dining req/fork + "
               "ping/ack) should not grow with system size"],
    )
