"""E17 — grand finale: dining → extracted ◇P → consensus → replicated KV.

The full constructive consequence of the paper's equivalence: starting
from nothing but a black-box WF-◇WX dining service, extract ◇P with the
reduction, run Chandra–Toueg consensus instances on it, build atomic
broadcast, and replicate a key-value store — then crash a replica mid-run
and check every correct replica converged to the identical state, with the
extracted oracle as the only failure information in the whole stack.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.apps.kv_store import KVReplica, check_replication
from repro.consensus.atomic_broadcast import (
    check_total_order,
    setup_atomic_broadcast,
)
from repro.core.extraction import build_full_extraction
from repro.experiments.common import ExperimentResult, build_system, wf_box
from repro.sim.faults import CrashSchedule

EXP_ID = "E17"
TITLE = "End-to-end: dining → extracted ◇P → atomic broadcast → replicated KV"


def run(seed: int = 1701, n: int = 3, n_commands: int = 5,
        crash_at: float = 260.0, max_time: float = 12000.0,
        use_extraction: bool = True) -> ExperimentResult:
    pids = [f"p{i}" for i in range(n)]
    faulty = pids[-1]
    system = build_system(pids, seed=seed, max_time=max_time,
                          crash=CrashSchedule.single(faulty, crash_at))
    if use_extraction:
        detectors, _ = build_full_extraction(system.engine, pids,
                                             wf_box(system))
    else:
        detectors = system.box_modules
    abcs = setup_atomic_broadcast(system.engine, pids, detectors)
    replicas = {
        pid: system.engine.process(pid).add_component(
            KVReplica("kv", abcs[pid]))
        for pid in pids
    }

    sent: set[str] = set()

    def submit(pid: str, op: str, key: str, value=None):
        def go():
            if not system.engine.process(pid).crashed:
                sent.add(replicas[pid].submit(op, key, value))
        return go

    script = [
        (30.0, submit(pids[0], "set", "x", 1)),
        (80.0, submit(pids[1], "incr", "x")),
        (130.0, submit(pids[2], "set", "y", "hello")),
        (180.0, submit(pids[0], "incr", "x")),
        (320.0, submit(pids[1], "set", "z", 42)),   # after the crash
    ][:n_commands]
    for at, fn in script:
        system.engine.schedule_call(at, fn)

    correct = [p for p in pids if p != faulty]
    expected_commands = len(script)   # every submitter is live at its time
    system.engine.run(stop_when=lambda: len(sent) >= expected_commands
                      and all(replicas[p].applied >= len(sent)
                              for p in correct))

    order = check_total_order(system.engine.trace, pids, system.schedule,
                              sent)
    repl = check_replication(replicas, correct)

    table = Table(["property", "verdict", "detail"], title=TITLE)
    table.add_row(["total order (agreement, prefix-compatible)",
                   order.agreement, f"{len(sent)} commands"])
    table.add_row(["no duplication / validity",
                   order.no_duplication and order.validity, ""])
    table.add_row(["all delivered at correct replicas",
                   order.all_delivered, ""])
    table.add_row(["replica state consistency", repl.consistent,
                   f"final state {repl.final_state}"])
    table.add_row(["virtual time to convergence", True,
                   f"{system.engine.now:.1f}"])
    expected = {"x": 3, "y": "hello", "z": 42}
    correct_semantics = repl.final_state == expected
    table.add_row(["state matches command semantics", correct_semantics,
                   f"expected {expected}"])
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE,
        ok=order.ok and repl.ok and correct_semantics,
        table=table,
        notes=[f"replica {faulty} crashes at t={crash_at}; the only failure "
               "information anywhere in the stack is the oracle extracted "
               "from black-box dining"],
    )
