"""E14 — robustness: the reduction under targeted adversaries.

The necessity proof must hold for *every* run the model admits, so the
reduction's extracted oracle must keep its ◇P properties under adversaries
the asynchronous model allows: arbitrarily (but finitely) slowed ping/ack
traffic, a victim process whose channels crawl, and a subject whose steps
run an order of magnitude slower than the witness's.  Convergence may come
later; it must still come.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.core.extraction import build_full_extraction
from repro.dining.wf_ewx import WaitFreeEWXDining
from repro.experiments.common import ExperimentResult
from repro.oracles import EventuallyPerfectDetector, attach_detectors
from repro.oracles.properties import (
    check_eventual_strong_accuracy,
    check_strong_completeness,
)
from repro.sim.adversary import DelayRule, TargetedDelays, by_endpoint, by_kind
from repro.sim.engine import Engine, SimConfig
from repro.sim.scheduler import BurstySteps
from repro.sim.faults import CrashSchedule
from repro.sim.network import PartialSynchronyDelays

EXP_ID = "E14"
TITLE = "Robustness: reduction properties under targeted adversaries"


def _build(seed: int, adversary: str, crash: CrashSchedule, max_time: float):
    base = PartialSynchronyDelays(gst=120.0, delta=1.5, pre_gst_max=25.0)
    speeds = {}
    step_policy = None
    if adversary == "slow-pingack":
        model = TargetedDelays(base, [
            DelayRule(by_kind("ping", "ack"), factor=8.0, extra_max=20.0,
                      until=900.0),
        ])
    elif adversary == "victim-channels":
        model = TargetedDelays(base, [
            DelayRule(by_endpoint("q"), factor=5.0, extra_max=15.0,
                      until=900.0),
        ])
    elif adversary == "slow-subject":
        model = base
        speeds = {"q": 6.0}
    elif adversary == "bursty-steps":
        model = base
        step_policy = BurstySteps(pause_prob=0.03, pause_lo=10.0,
                                  pause_hi=40.0)
    else:
        model = base
    engine = Engine(SimConfig(seed=seed, max_time=max_time, speeds=speeds,
                              step_policy=step_policy),
                    delay_model=model, crash_schedule=crash)
    for pid in ("p", "q"):
        engine.add_process(pid)
    mods = attach_detectors(
        engine, ["p", "q"],
        lambda o, peers: EventuallyPerfectDetector(
            "boxfd", peers, heartbeat_period=4, initial_timeout=10),
    )
    provider = lambda pid: (lambda x, m=mods[pid]: m.suspected(x))  # noqa: E731
    box = lambda iid, g: WaitFreeEWXDining(iid, g, provider)  # noqa: E731
    build_full_extraction(engine, ["p", "q"], box, monitors=[("p", "q")])
    return engine


def run(seed: int = 1401,
        adversaries: tuple[str, ...] = ("none", "slow-pingack",
                                        "victim-channels", "slow-subject",
                                        "bursty-steps"),
        max_time: float = 4000.0) -> ExperimentResult:
    table = Table(["adversary", "accuracy", "accuracy conv",
                   "completeness", "detect latency"], title=TITLE)
    ok_all = True
    for adversary in adversaries:
        # accuracy run (q correct)
        eng = _build(seed, adversary, CrashSchedule.none(), max_time)
        eng.run()
        acc = check_eventual_strong_accuracy(
            eng.trace, ["p"], ["q"], CrashSchedule.none(),
            detector="extracted")
        # completeness run (q crashes mid-run)
        sched = CrashSchedule.single("q", max_time / 2)
        eng2 = _build(seed + 1, adversary, sched, max_time)
        eng2.run()
        comp = check_strong_completeness(
            eng2.trace, ["p"], ["q"], sched, detector="extracted")
        latency = (comp.convergence - max_time / 2
                   if comp.ok and comp.convergence else None)
        ok_all &= acc.ok and comp.ok
        table.add_row([adversary, acc.ok, acc.convergence, comp.ok, latency])
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE, ok=ok_all, table=table,
        notes=["adversaries slow ping/ack traffic 8x, the subject's channels "
               "5x, the subject's steps 6x, or stall both processes in "
               "random bursts; the reduction must converge later but "
               "still converge"],
    )
