"""E2 — Theorem 1: strong completeness of the extracted detector.

Paper claim: for *any* black-box WF-◇WX solution, a crashed subject is
eventually and permanently suspected by every correct witness.  We sweep
crash times over both black boxes (well-behaved and adversarial) and report
the detection latency (suspicion convergence − crash time).
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.core.extraction import build_full_extraction
from repro.experiments.common import (
    BOX_BUILDERS,
    ExperimentResult,
    build_system,
)
from repro.oracles.properties import check_strong_completeness
from repro.sim.faults import CrashSchedule

EXP_ID = "E2"
TITLE = "Theorem 1: strong completeness (crashed => permanently suspected)"


def run(seed: int = 201,
        crash_times: tuple[float, ...] = (250.0, 800.0),
        boxes: tuple[str, ...] = ("wf", "deferred", "manager"),
        n: int = 3,
        max_time: float = 2500.0) -> ExperimentResult:
    table = Table(["box", "crash time", "converged", "detection latency",
                   "pairs checked"], title=TITLE)
    all_ok = True
    for box_name in boxes:
        for k, crash_at in enumerate(crash_times):
            pids = [f"p{i}" for i in range(n)]
            faulty = pids[-1]
            system = build_system(
                pids, seed=seed + k, max_time=max_time,
                crash=CrashSchedule.single(faulty, crash_at),
            )
            box = BOX_BUILDERS[box_name](system)
            build_full_extraction(system.engine, pids, box)
            system.engine.run()
            report = check_strong_completeness(
                system.engine.trace, pids, pids, system.schedule,
                detector="extracted",
            )
            ok = report.ok
            all_ok &= ok
            conv = report.convergence
            latency = (conv - crash_at) if (ok and conv is not None) else None
            table.add_row([box_name, crash_at, ok, latency, len(report.pairs)])
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE, ok=all_ok, table=table,
        notes=["latency = suspicion convergence time - crash time; every "
               "black box must satisfy the theorem (universality)"],
    )
