"""E1 — Figure 1: witness/subject session structure in the exclusive suffix.

Paper claim: once the dining instances stop making scheduling mistakes,
(a) per instance, a witness never eats twice without the subject eating in
between (throttling), and (b) the two subjects' eating sessions overlap
pairwise (the hand-off gray regions).
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.analysis.sessions import analyze_pair_sessions
from repro.core.extraction import build_full_extraction
from repro.dining.spec import check_exclusion
from repro.experiments.common import ExperimentResult, build_system, wf_box
from repro.graphs import pair_graph

EXP_ID = "E1"
TITLE = "Figure 1: session alternation and subject hand-off overlap"


def run(seed: int = 101, max_time: float = 2500.0, gst: float = 150.0,
        washout: float = 200.0) -> ExperimentResult:
    system = build_system(["p", "q"], seed=seed, gst=gst, max_time=max_time)
    _, pairs = build_full_extraction(
        system.engine, system.pids, wf_box(system), monitors=[("p", "q")],
        monitor_invariants=True,
    )
    system.engine.run()
    end = system.engine.now
    pair = pairs[("p", "q")]

    analysis = analyze_pair_sessions(system.engine.trace, pair, end)
    # Empirical convergence: last exclusion violation across both instances.
    conv = 0.0
    for iid in pair.instance_ids():
        rep = check_exclusion(system.engine.trace, pair_graph("p", "q"), iid,
                              system.schedule, end)
        if rep.last_violation_end is not None:
            conv = max(conv, rep.last_violation_end)
    after = conv + washout

    throttling = analysis.throttling_ok(after)
    handoff = analysis.handoff_ok(after)
    counts = analysis.counts()

    table = Table(
        ["check", "window start", "verdict", "sessions w0/w1/s0/s1"],
        title=TITLE,
    )
    sessions = "/".join(str(counts[k]) for k in ("w0", "w1", "s0", "s1"))
    table.add_row(["witness throttling (per instance)", after, throttling, sessions])
    table.add_row(["subject hand-off overlap", after, handoff, sessions])

    window = (max(after, end - 150.0), end)
    timeline = analysis.render(window[0], window[1])
    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE,
        ok=throttling and handoff and min(counts.values()) > 10,
        table=table,
        notes=[f"exclusion converged by t={conv:.1f}; suffix checked from "
               f"t={after:.1f}",
               "timeline of the final window (cf. paper Fig. 1):",
               timeline],
        data={"analysis": analysis, "convergence": conv},
    )
