"""E5 — Lemmas 5, 7, 9, 11, 12: liveness and structure of the reduction.

Paper claims checked on runs of two lengths T and 2T (both correct):

* Lemma 7 / 11 — subjects and witnesses eat infinitely often (session
  counts grow with run length);
* Lemma 12 — witnesses strictly alternate (session counts differ by ≤ 1);
* Lemma 5 — exactly one ping and one ack per completed subject session
  (ping/ack totals match completed sessions to within the one in flight);
* Lemma 9 — at all times some witness is thinking;
* Lemma 8 — eventually, at all times some subject is eating.

Lemmas 2 and 4 are checked continuously by the runtime invariant monitors
(enabled here), and Lemmas 1, 3, 6, 10 are exercised by the unit tests in
``tests/core``.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.analysis.sessions import analyze_pair_sessions
from repro.core.extraction import build_full_extraction
from repro.dining.spec import state_series
from repro.experiments.common import ExperimentResult, build_system, wf_box
from repro.sim.trace import state_intervals
from repro.types import DinerState, Time

EXP_ID = "E5"
TITLE = "Lemmas 5/7/9/11/12: liveness and structure of witnesses & subjects"


def _coverage_gaps(intervals: list[tuple[Time, Time]], start: Time,
                   end: Time, slack: Time = 1e-9) -> float:
    """Total time in [start, end] not covered by the given intervals."""
    covered = 0.0
    cursor = start
    for a, b in sorted(intervals):
        a, b = max(a, start), min(b, end)
        if b <= cursor:
            continue
        covered += b - max(a, cursor)
        cursor = max(cursor, b)
    return max(end - start - covered, 0.0)


def _one_run(seed: int, max_time: float) -> dict:
    system = build_system(["p", "q"], seed=seed, gst=120.0, max_time=max_time)
    _, pairs = build_full_extraction(
        system.engine, ["p", "q"], wf_box(system), monitors=[("p", "q")],
        monitor_invariants=True,
    )
    system.engine.run()
    pair = pairs[("p", "q")]
    end = system.engine.now
    trace = system.engine.trace
    analysis = analyze_pair_sessions(trace, pair, end)

    # Lemma 9: union of the witnesses' thinking intervals covers the run.
    thinking = []
    for iid in pair.instance_ids():
        series = state_series(trace, iid, "p")
        thinking += state_intervals(series, DinerState.THINKING.value, end)
    lemma9_gap = _coverage_gaps(thinking, 0.0, end)

    # Lemma 8: union of the subjects' eating intervals covers a suffix.
    eating = analysis.subject[0] + analysis.subject[1]
    lemma8_gap_suffix = _coverage_gaps(eating, end * 0.5, end)

    return {
        "counts": analysis.counts(),
        "pings": [s.pings_sent for s in pair.subjects],
        "acks": [w.acks_sent for w in pair.witnesses],
        "completed": [s.eat_sessions_completed for s in pair.subjects],
        "lemma9_gap": lemma9_gap,
        "lemma8_gap": lemma8_gap_suffix,
        "end": end,
    }


def run(seed: int = 501, base_time: float = 1500.0) -> ExperimentResult:
    short = _one_run(seed, base_time)
    long = _one_run(seed, 2 * base_time)

    table = Table(["lemma", "claim", "short run", "long run", "verdict"],
                  title=TITLE)
    checks: list[bool] = []

    def row(lemma: str, claim: str, s_val, l_val, ok: bool) -> None:
        checks.append(ok)
        table.add_row([lemma, claim, s_val, l_val, ok])

    s_w = short["counts"]["w0"] + short["counts"]["w1"]
    l_w = long["counts"]["w0"] + long["counts"]["w1"]
    row("L11", "witnesses eat ever more often", s_w, l_w,
        l_w > 1.5 * s_w and s_w > 20)

    s_s = short["counts"]["s0"] + short["counts"]["s1"]
    l_s = long["counts"]["s0"] + long["counts"]["s1"]
    row("L7", "subjects eat ever more often", s_s, l_s,
        l_s > 1.5 * s_s and s_s > 20)

    alt_s = abs(short["counts"]["w0"] - short["counts"]["w1"])
    alt_l = abs(long["counts"]["w0"] - long["counts"]["w1"])
    row("L12", "witnesses alternate (|#w0-#w1| <= 1)", alt_s, alt_l,
        alt_s <= 1 and alt_l <= 1)

    def lemma5_ok(r: dict) -> bool:
        return all(
            abs(r["pings"][i] - r["completed"][i]) <= 1
            and abs(r["acks"][i] - r["pings"][i]) <= 1
            for i in (0, 1)
        )

    row("L5", "one ping + one ack per subject session",
        f"{short['pings']}/{short['completed']}",
        f"{long['pings']}/{long['completed']}",
        lemma5_ok(short) and lemma5_ok(long))

    row("L9", "some witness always thinking (gap time)",
        round(short["lemma9_gap"], 3), round(long["lemma9_gap"], 3),
        short["lemma9_gap"] == 0.0 and long["lemma9_gap"] == 0.0)

    row("L8", "eventually some subject always eating (suffix gap)",
        round(short["lemma8_gap"], 3), round(long["lemma8_gap"], 3),
        short["lemma8_gap"] == 0.0 and long["lemma8_gap"] == 0.0)

    return ExperimentResult(
        exp_id=EXP_ID, title=TITLE, ok=all(checks), table=table,
        notes=["runtime monitors for Lemmas 2 and 4 were enabled and did "
               "not fire"],
    )
