"""Declarative scenario runner: dict/JSON in, verdicts out.

Downstream users rarely want to wire engines by hand; a
:class:`Scenario` describes a dining simulation declaratively —

.. code-block:: python

    Scenario.from_dict({
        "name": "ring under one crash",
        "graph": "ring:5",
        "algorithm": "wf-ewx",        # wf-ewx | hygienic | deferred |
                                      # manager | fair:<k>
        "oracle": "hb",               # hb | perfect
        "client": "eager:2",          # eager:<steps> | periodic
        "crashes": {"p1": 400.0},
        "seed": 7,
        "gst": 120.0,
        "max_time": 2000.0,
        # optional link faults (see docs/fault_model.md):
        "drop": 0.15,                 # per-message loss probability
        "duplicate": 0.05,            # per-message duplication probability
        "partition": {"side": ["p0", "p1"], "start": 300.0, "end": 450.0},
        "transport": True,            # reliable transport over the faults
                                      # (default: auto — on iff faults set)
        # optional targeted adversary (extra delay on matching messages):
        "slow": {"kind": "ping", "factor": 4.0, "until": 800.0},
        # optional trace sink (docs/runtime.md): full | ring:N | counters
        "trace": "full",
        # optional pair selection (docs/topologies.md): all | neighbors |
        # neighbors:<k> — conflict-graph-local detector monitoring
        "pairs": "all",
    }).run()

— and ``run()`` returns a :class:`ScenarioReport` bundling the
wait-freedom, exclusion, fairness, and box-oracle (◇P) verdicts plus run
metrics.  The CLI exposes it as ``repro scenario path/to/file.json``; the
chaos runner (:mod:`repro.chaos`) generates randomized scenarios through
this same front door so every chaos run replays from its seed.

A :class:`Scenario` *is* a :class:`~repro.runtime.spec.RunSpec` — all
wiring and execution happens in :mod:`repro.runtime`; this module only
adds the report view and its rendering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table
from repro.runtime import INSTANCE, RunResult, RunSpec, execute, parse_graph

__all__ = ["INSTANCE", "Scenario", "ScenarioReport", "parse_graph"]


@dataclass
class ScenarioReport(RunResult):
    """Thin presentation view over the runtime's :class:`RunResult`."""

    @classmethod
    def from_result(cls, result: RunResult) -> "ScenarioReport":
        return cls(**RunResult.view_fields(result))

    def render(self) -> str:
        if not self.checked:
            # counters-sink run: no rows were retained, so no verdicts —
            # render the cost/telemetry side only.
            t = Table(["property", "value"],
                      title=f"scenario: {self.name} (unchecked, "
                            f"trace {self.trace_mode})")
            t.add_row(["messages sent", self.metrics.messages_sent])
            t.add_row(["messages dropped", self.metrics.messages_dropped])
            t.add_row(["messages duplicated", self.metrics.messages_duplicated])
            t.add_row(["retransmissions", self.metrics.retransmissions])
            t.add_row(["events processed", self.metrics.events_processed])
            t.add_row(["convergence time", self.convergence_time])
            t.add_row(["trace sink", self.trace_mode])
            t.add_row(["virtual time", self.end_time])
            return t.render()
        t = Table(["property", "value"], title=f"scenario: {self.name}")
        t.add_row(["wait-free", self.wait_freedom.ok])
        t.add_row(["starving", ", ".join(self.wait_freedom.starving) or None])
        t.add_row(["max hungry wait", self.wait_freedom.max_wait])
        t.add_row(["exclusion violations", self.exclusion.count])
        t.add_row(["last violation ends", self.exclusion.last_violation_end])
        t.add_row(["perpetually exclusive", self.exclusion.perpetual_ok])
        t.add_row(["oracle accuracy ok", self.oracle_accuracy_ok])
        t.add_row(["oracle completeness ok", self.oracle_completeness_ok])
        t.add_row(["violations justified", self.violations_justified])
        t.add_row(["worst overtaking", self.fairness.worst_overall()])
        t.add_row(["messages sent", self.metrics.messages_sent])
        t.add_row(["messages dropped", self.metrics.messages_dropped])
        t.add_row(["messages duplicated", self.metrics.messages_duplicated])
        t.add_row(["retransmissions", self.metrics.retransmissions])
        t.add_row(["trace sink", self.trace_mode])
        t.add_row(["virtual time", self.end_time])
        sessions = ", ".join(
            f"{p}:{n}" for p, n in sorted(self.wait_freedom.sessions.items())
        )
        return t.render() + f"\nsessions: {sessions}"


@dataclass
class Scenario(RunSpec):
    """A declaratively-described dining run (a named :class:`RunSpec`)."""

    name: str = "scenario"

    def run(self) -> ScenarioReport:
        """Execute through the canonical runtime and wrap the envelope."""
        return ScenarioReport.from_result(execute(self))
