"""Declarative scenario runner: dict/JSON in, verdicts out.

Downstream users rarely want to wire engines by hand; a
:class:`Scenario` describes a dining simulation declaratively —

.. code-block:: python

    Scenario.from_dict({
        "name": "ring under one crash",
        "graph": "ring:5",
        "algorithm": "wf-ewx",        # wf-ewx | hygienic | deferred |
                                      # manager | fair:<k>
        "oracle": "hb",               # hb | perfect
        "client": "eager:2",          # eager:<steps> | periodic
        "crashes": {"p1": 400.0},
        "seed": 7,
        "gst": 120.0,
        "max_time": 2000.0,
        # optional link faults (see docs/fault_model.md):
        "drop": 0.15,                 # per-message loss probability
        "duplicate": 0.05,            # per-message duplication probability
        "partition": {"side": ["p0", "p1"], "start": 300.0, "end": 450.0},
        "transport": True,            # reliable transport over the faults
                                      # (default: auto — on iff faults set)
        # optional targeted adversary (extra delay on matching messages):
        "slow": {"kind": "ping", "factor": 4.0, "until": 800.0},
    }).run()

— and ``run()`` returns a :class:`ScenarioReport` bundling the
wait-freedom, exclusion, fairness, and box-oracle (◇P) verdicts plus run
metrics.  The CLI exposes it as ``repro scenario path/to/file.json``; the
chaos runner (:mod:`repro.chaos`) generates randomized scenarios through
this same front door so every chaos run replays from its seed.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import networkx as nx

from repro import graphs
from repro.analysis.report import Table
from repro.dining.client import EagerClient, PeriodicClient
from repro.dining.deferred import DeferredExclusionDining
from repro.dining.fair_wrapper import FairDining
from repro.dining.fairness import FairnessReport, measure_fairness
from repro.dining.hygienic import HygienicDining
from repro.dining.manager import ManagerDining
from repro.dining.spec import (
    ExclusionReport,
    WaitFreedomReport,
    check_exclusion,
    check_wait_freedom,
    state_series,
)
from repro.dining.wf_ewx import WaitFreeEWXDining
from repro.errors import ConfigurationError
from repro.experiments.common import build_system
from repro.oracles.properties import (
    check_eventual_strong_accuracy,
    check_strong_completeness,
    suspected_at,
)
from repro.sim import adversary
from repro.sim.faults import CrashSchedule
from repro.types import DinerState
from repro.sim.link_faults import LinkFaultModel, Partition
from repro.sim.metrics import RunMetrics, collect_metrics
from repro.sim.network import PartialSynchronyDelays
from repro.sim.transport import RetransmitPolicy

INSTANCE = "SCENARIO"


def parse_graph(spec: str) -> nx.Graph:
    """Parse a graph spec: ``ring:5``, ``clique:4``, ``path:6``,
    ``star:4``, ``grid:2x3``, or ``pair:a,b``."""
    kind, _, arg = spec.partition(":")
    try:
        if kind == "ring":
            return graphs.ring(int(arg))
        if kind == "clique":
            return graphs.clique(int(arg))
        if kind == "path":
            return graphs.path(int(arg))
        if kind == "star":
            return graphs.star(int(arg))
        if kind == "grid":
            rows, cols = arg.split("x")
            return graphs.grid(int(rows), int(cols))
        if kind == "pair":
            a, b = arg.split(",")
            return graphs.pair_graph(a.strip(), b.strip())
    except (ValueError, TypeError) as exc:
        raise ConfigurationError(f"bad graph spec {spec!r}: {exc}") from exc
    raise ConfigurationError(f"unknown graph kind {kind!r}")


def _violation_justified(trace, violation) -> bool:
    """Did either endpoint's current eating session begin under suspicion
    of the other?  (The ◇WX mechanism: simultaneous eating is only ever
    enabled by an oracle mistake — see ScenarioReport.violations_justified.)
    """
    for eater, peer in ((violation.u, violation.v), (violation.v, violation.u)):
        begins = [t for t, s in state_series(trace, INSTANCE, eater)
                  if s == DinerState.EATING.value and t <= violation.start]
        if begins and suspected_at(trace, eater, peer, max(begins),
                                   detector="boxfd"):
            return True
    return False


@dataclass
class ScenarioReport:
    """Bundle of verdicts for one scenario run."""

    name: str
    wait_freedom: WaitFreedomReport
    exclusion: ExclusionReport
    fairness: FairnessReport
    metrics: RunMetrics
    end_time: float
    #: Box-oracle (◇P substrate) verdicts: eventual strong accuracy and
    #: strong completeness, checked from the trace over the whole run.
    oracle_accuracy_ok: bool = True
    oracle_completeness_ok: bool = True
    #: The ◇WX mechanism check: every exclusion violation must be
    #: *oracle-justified* — at least one endpoint's eating session began
    #: while it suspected the other.  (The later entrant cannot hold the
    #: shared fork, since forks never leave an eater, so an unjustified
    #: violation means the dining layer itself double-granted an edge.)
    #: Unlike a fixed convergence deadline this is robust to legitimate
    #: late ◇P mistakes, which become rarer but may occur arbitrarily
    #: deep into a finite run.
    violations_justified: bool = True

    @property
    def ok(self) -> bool:
        return self.wait_freedom.ok

    def eventually_exclusive_by(self, t: float) -> bool:
        """◇WX convergence test: did all exclusion violations end by ``t``?"""
        return self.exclusion.eventually_exclusive_by(t)

    def render(self) -> str:
        t = Table(["property", "value"], title=f"scenario: {self.name}")
        t.add_row(["wait-free", self.wait_freedom.ok])
        t.add_row(["starving", ", ".join(self.wait_freedom.starving) or None])
        t.add_row(["max hungry wait", self.wait_freedom.max_wait])
        t.add_row(["exclusion violations", self.exclusion.count])
        t.add_row(["last violation ends", self.exclusion.last_violation_end])
        t.add_row(["perpetually exclusive", self.exclusion.perpetual_ok])
        t.add_row(["oracle accuracy ok", self.oracle_accuracy_ok])
        t.add_row(["oracle completeness ok", self.oracle_completeness_ok])
        t.add_row(["violations justified", self.violations_justified])
        t.add_row(["worst overtaking", self.fairness.worst_overall()])
        t.add_row(["messages sent", self.metrics.messages_sent])
        t.add_row(["messages dropped", self.metrics.messages_dropped])
        t.add_row(["messages duplicated", self.metrics.messages_duplicated])
        t.add_row(["retransmissions", self.metrics.retransmissions])
        t.add_row(["virtual time", self.end_time])
        sessions = ", ".join(
            f"{p}:{n}" for p, n in sorted(self.wait_freedom.sessions.items())
        )
        return t.render() + f"\nsessions: {sessions}"


@dataclass
class Scenario:
    """A declaratively-described dining run."""

    name: str = "scenario"
    graph: str = "ring:4"
    algorithm: str = "wf-ewx"
    oracle: str = "hb"
    client: str = "eager:2"
    crashes: Mapping[str, float] = field(default_factory=dict)
    seed: int = 0
    gst: float = 120.0
    max_time: float = 2000.0
    grace: float = 120.0
    #: Link faults (docs/fault_model.md): per-message loss/duplication
    #: probabilities and an optional partition window
    #: ``{"side": [pids], "start": t0, "end": t1}``.
    drop: float = 0.0
    duplicate: float = 0.0
    partition: Optional[Mapping[str, Any]] = None
    #: Reliable transport over the faulty wire.  ``None`` = auto: installed
    #: exactly when link faults are configured, so algorithms keep their
    #: Section 4 channel assumptions.  ``False`` exposes raw faults to the
    #: algorithms (chaos/negative testing).  A mapping is passed through as
    #: :class:`~repro.sim.transport.RetransmitPolicy` keywords, e.g.
    #: ``{"rto_initial": 6.0, "rto_max": 45.0}``.
    transport: Optional[bool | Mapping[str, float]] = None
    #: Targeted delay adversary: ``{"kind"|"endpoint"|"tag_prefix": ...,
    #: "factor": f, "extra_max": m, "until": t}`` (see repro.sim.adversary).
    slow: Optional[Mapping[str, Any]] = None

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        unknown = set(data) - {f.name for f in cls.__dataclass_fields__.values()}
        if unknown:
            raise ConfigurationError(f"unknown scenario keys: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_json(cls, path: str | pathlib.Path) -> "Scenario":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))

    # -- pieces ----------------------------------------------------------------

    def _instance(self, graph: nx.Graph, system):
        algo, _, arg = self.algorithm.partition(":")
        if algo == "wf-ewx":
            return WaitFreeEWXDining(INSTANCE, graph, system.provider)
        if algo == "hygienic":
            return HygienicDining(INSTANCE, graph)
        if algo == "deferred":
            horizon = float(arg) if arg else 150.0
            return DeferredExclusionDining(INSTANCE, graph, system.provider,
                                           mistake_horizon=horizon)
        if algo == "manager":
            return ManagerDining(INSTANCE, graph, system.provider)
        if algo == "fair":
            k = int(arg) if arg else 2
            inner = lambda iid, g: WaitFreeEWXDining(iid, g,  # noqa: E731
                                                     system.provider)
            return FairDining(INSTANCE, graph, inner, system.provider, k=k)
        raise ConfigurationError(f"unknown algorithm {self.algorithm!r}")

    def _client(self, pid, diner, engine):
        kind, _, arg = self.client.partition(":")
        if kind == "eager":
            steps = int(arg) if arg else 2
            return EagerClient("client", diner, eat_steps=steps)
        if kind == "periodic":
            return PeriodicClient("client", diner,
                                  rng=engine.rng.stream(f"client:{pid}"))
        raise ConfigurationError(f"unknown client kind {self.client!r}")

    def _fault_model(self, pids) -> Optional[LinkFaultModel]:
        partitions = []
        if self.partition is not None:
            spec = dict(self.partition)
            unknown = set(spec) - {"side", "start", "end"}
            if unknown:
                raise ConfigurationError(
                    f"unknown partition keys: {sorted(unknown)}")
            side = set(spec.get("side", ()))
            bad = side - set(pids)
            if bad:
                raise ConfigurationError(
                    f"partition side names unknown processes: {sorted(bad)}")
            partitions.append(Partition.of(side, float(spec["start"]),
                                           float(spec["end"])))
        if not (self.drop or self.duplicate or partitions):
            return None
        return LinkFaultModel(drop=self.drop, duplicate=self.duplicate,
                              partitions=partitions)

    def _delay_model(self):
        """The channel model, wrapped in a targeted adversary if ``slow``."""
        # Same channel constants build_system would pick on its own, so a
        # scenario with no adversary behaves exactly as before.
        base = PartialSynchronyDelays(gst=self.gst, delta=1.5, pre_gst_max=30.0)
        if self.slow is None:
            return base
        spec = dict(self.slow)
        preds = []
        if "kind" in spec:
            preds.append(adversary.by_kind(spec.pop("kind")))
        if "endpoint" in spec:
            preds.append(adversary.by_endpoint(spec.pop("endpoint")))
        if "tag_prefix" in spec:
            preds.append(adversary.by_tag_prefix(spec.pop("tag_prefix")))
        if not preds:
            raise ConfigurationError(
                "slow needs a kind/endpoint/tag_prefix selector")
        until = spec.pop("until", None)
        rule = adversary.DelayRule(
            predicate=lambda m: all(p(m) for p in preds),
            factor=float(spec.pop("factor", 1.0)),
            extra_max=float(spec.pop("extra_max", 0.0)),
            until=None if until is None else float(until),
        )
        if spec:
            raise ConfigurationError(f"unknown slow keys: {sorted(spec)}")
        return adversary.TargetedDelays(base, [rule])

    # -- running ------------------------------------------------------------------

    def run(self) -> ScenarioReport:
        graph = parse_graph(self.graph)
        pids = sorted(graph.nodes)
        bad = set(self.crashes) - set(pids)
        if bad:
            raise ConfigurationError(f"crashes name unknown processes: {bad}")
        fault_model = self._fault_model(pids)
        use_transport: Any = (self.transport if self.transport is not None
                              else fault_model is not None)
        if isinstance(use_transport, Mapping):
            use_transport = RetransmitPolicy(
                **{k: float(v) for k, v in use_transport.items()})
        system = build_system(
            pids, seed=self.seed, gst=self.gst, max_time=self.max_time,
            crash=CrashSchedule(dict(self.crashes)), oracle=self.oracle,
            delay_model=self._delay_model(), fault_model=fault_model,
            transport=use_transport,
        )
        instance = self._instance(graph, system)
        diners = instance.attach(system.engine)
        for pid in pids:
            system.engine.process(pid).add_component(
                self._client(pid, diners[pid], system.engine))
        system.engine.run()
        eng = system.engine
        accuracy = check_eventual_strong_accuracy(
            eng.trace, pids, pids, system.schedule, detector="boxfd")
        completeness = check_strong_completeness(
            eng.trace, pids, pids, system.schedule, detector="boxfd")
        exclusion = check_exclusion(eng.trace, graph, INSTANCE,
                                    system.schedule, eng.now)
        return ScenarioReport(
            name=self.name,
            wait_freedom=check_wait_freedom(eng.trace, graph, INSTANCE,
                                            system.schedule, eng.now,
                                            grace=self.grace),
            exclusion=exclusion,
            fairness=measure_fairness(eng.trace, graph, INSTANCE, eng.now,
                                      system.schedule),
            metrics=collect_metrics(eng),
            end_time=eng.now,
            oracle_accuracy_ok=accuracy.ok,
            oracle_completeness_ok=completeness.ok,
            violations_justified=all(
                _violation_justified(eng.trace, v) for v in exclusion.violations),
        )
