"""Declarative scenario runner: dict/JSON in, verdicts out.

Downstream users rarely want to wire engines by hand; a
:class:`Scenario` describes a dining simulation declaratively —

.. code-block:: python

    Scenario.from_dict({
        "name": "ring under one crash",
        "graph": "ring:5",
        "algorithm": "wf-ewx",        # wf-ewx | hygienic | deferred |
                                      # manager | fair:<k>
        "oracle": "hb",               # hb | perfect
        "client": "eager:2",          # eager:<steps> | periodic
        "crashes": {"p1": 400.0},
        "seed": 7,
        "gst": 120.0,
        "max_time": 2000.0,
    }).run()

— and ``run()`` returns a :class:`ScenarioReport` bundling the
wait-freedom, exclusion, and fairness verdicts plus run metrics.  The CLI
exposes it as ``repro scenario path/to/file.json``.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import networkx as nx

from repro import graphs
from repro.analysis.report import Table
from repro.dining.client import EagerClient, PeriodicClient
from repro.dining.deferred import DeferredExclusionDining
from repro.dining.fair_wrapper import FairDining
from repro.dining.fairness import FairnessReport, measure_fairness
from repro.dining.hygienic import HygienicDining
from repro.dining.manager import ManagerDining
from repro.dining.spec import (
    ExclusionReport,
    WaitFreedomReport,
    check_exclusion,
    check_wait_freedom,
)
from repro.dining.wf_ewx import WaitFreeEWXDining
from repro.errors import ConfigurationError
from repro.experiments.common import build_system
from repro.sim.faults import CrashSchedule
from repro.sim.metrics import RunMetrics, collect_metrics

INSTANCE = "SCENARIO"


def parse_graph(spec: str) -> nx.Graph:
    """Parse a graph spec: ``ring:5``, ``clique:4``, ``path:6``,
    ``star:4``, ``grid:2x3``, or ``pair:a,b``."""
    kind, _, arg = spec.partition(":")
    try:
        if kind == "ring":
            return graphs.ring(int(arg))
        if kind == "clique":
            return graphs.clique(int(arg))
        if kind == "path":
            return graphs.path(int(arg))
        if kind == "star":
            return graphs.star(int(arg))
        if kind == "grid":
            rows, cols = arg.split("x")
            return graphs.grid(int(rows), int(cols))
        if kind == "pair":
            a, b = arg.split(",")
            return graphs.pair_graph(a.strip(), b.strip())
    except (ValueError, TypeError) as exc:
        raise ConfigurationError(f"bad graph spec {spec!r}: {exc}") from exc
    raise ConfigurationError(f"unknown graph kind {kind!r}")


@dataclass
class ScenarioReport:
    """Bundle of verdicts for one scenario run."""

    name: str
    wait_freedom: WaitFreedomReport
    exclusion: ExclusionReport
    fairness: FairnessReport
    metrics: RunMetrics
    end_time: float

    @property
    def ok(self) -> bool:
        return self.wait_freedom.ok

    def render(self) -> str:
        t = Table(["property", "value"], title=f"scenario: {self.name}")
        t.add_row(["wait-free", self.wait_freedom.ok])
        t.add_row(["starving", ", ".join(self.wait_freedom.starving) or None])
        t.add_row(["max hungry wait", self.wait_freedom.max_wait])
        t.add_row(["exclusion violations", self.exclusion.count])
        t.add_row(["last violation ends", self.exclusion.last_violation_end])
        t.add_row(["perpetually exclusive", self.exclusion.perpetual_ok])
        t.add_row(["worst overtaking", self.fairness.worst_overall()])
        t.add_row(["messages sent", self.metrics.messages_sent])
        t.add_row(["virtual time", self.end_time])
        sessions = ", ".join(
            f"{p}:{n}" for p, n in sorted(self.wait_freedom.sessions.items())
        )
        return t.render() + f"\nsessions: {sessions}"


@dataclass
class Scenario:
    """A declaratively-described dining run."""

    name: str = "scenario"
    graph: str = "ring:4"
    algorithm: str = "wf-ewx"
    oracle: str = "hb"
    client: str = "eager:2"
    crashes: Mapping[str, float] = field(default_factory=dict)
    seed: int = 0
    gst: float = 120.0
    max_time: float = 2000.0
    grace: float = 120.0

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        unknown = set(data) - {f.name for f in cls.__dataclass_fields__.values()}
        if unknown:
            raise ConfigurationError(f"unknown scenario keys: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_json(cls, path: str | pathlib.Path) -> "Scenario":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))

    # -- pieces ----------------------------------------------------------------

    def _instance(self, graph: nx.Graph, system):
        algo, _, arg = self.algorithm.partition(":")
        if algo == "wf-ewx":
            return WaitFreeEWXDining(INSTANCE, graph, system.provider)
        if algo == "hygienic":
            return HygienicDining(INSTANCE, graph)
        if algo == "deferred":
            horizon = float(arg) if arg else 150.0
            return DeferredExclusionDining(INSTANCE, graph, system.provider,
                                           mistake_horizon=horizon)
        if algo == "manager":
            return ManagerDining(INSTANCE, graph, system.provider)
        if algo == "fair":
            k = int(arg) if arg else 2
            inner = lambda iid, g: WaitFreeEWXDining(iid, g,  # noqa: E731
                                                     system.provider)
            return FairDining(INSTANCE, graph, inner, system.provider, k=k)
        raise ConfigurationError(f"unknown algorithm {self.algorithm!r}")

    def _client(self, pid, diner, engine):
        kind, _, arg = self.client.partition(":")
        if kind == "eager":
            steps = int(arg) if arg else 2
            return EagerClient("client", diner, eat_steps=steps)
        if kind == "periodic":
            return PeriodicClient("client", diner,
                                  rng=engine.rng.stream(f"client:{pid}"))
        raise ConfigurationError(f"unknown client kind {self.client!r}")

    # -- running ------------------------------------------------------------------

    def run(self) -> ScenarioReport:
        graph = parse_graph(self.graph)
        pids = sorted(graph.nodes)
        bad = set(self.crashes) - set(pids)
        if bad:
            raise ConfigurationError(f"crashes name unknown processes: {bad}")
        system = build_system(
            pids, seed=self.seed, gst=self.gst, max_time=self.max_time,
            crash=CrashSchedule(dict(self.crashes)), oracle=self.oracle,
        )
        instance = self._instance(graph, system)
        diners = instance.attach(system.engine)
        for pid in pids:
            system.engine.process(pid).add_component(
                self._client(pid, diners[pid], system.engine))
        system.engine.run()
        eng = system.engine
        return ScenarioReport(
            name=self.name,
            wait_freedom=check_wait_freedom(eng.trace, graph, INSTANCE,
                                            system.schedule, eng.now,
                                            grace=self.grace),
            exclusion=check_exclusion(eng.trace, graph, INSTANCE,
                                      system.schedule, eng.now),
            fairness=measure_fairness(eng.trace, graph, INSTANCE, eng.now,
                                      system.schedule),
            metrics=collect_metrics(eng),
            end_time=eng.now,
        )
