"""A lightweight, zero-dependency metrics registry.

Three metric types cover everything the telemetry layer needs:

* :class:`Counter`   — a monotonically non-decreasing total;
* :class:`Gauge`     — a point-in-time value (set, not accumulated);
* :class:`Histogram` — fixed-bucket value distribution with interpolated
  percentile estimation, mergeable across runs.

A :class:`MetricsRegistry` is a named, optionally-labelled collection of
these.  The simulation engine owns one per run; the network, transport,
and convergence probes all report into it, and
:meth:`MetricsRegistry.snapshot` freezes it into a plain-data
:class:`MetricsSnapshot` that pickles across worker processes, serializes
to JSON, and merges across campaign seeds (counters sum, histogram
buckets add; gauges are per-run facts and are dropped by ``merge`` —
campaign percentiles over gauges are computed by
:mod:`repro.obs.report` from the individual runs instead).

Everything here is deterministic pure arithmetic: no clocks, no
randomness, no I/O — so metric values are bit-identical between serial
and parallel campaign execution.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional, Sequence

from repro.errors import ConfigurationError

#: Default histogram bucket upper bounds (virtual-time latencies).  The
#: overflow bucket (+Inf) is implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)


def escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, double quote, newline.

    Label values come from user-facing strings — graph specs like
    ``rgg:200:0.12:7``, file paths, arbitrary run names — so the rendered
    ``{k="v"}`` form must stay unambiguous whatever the value contains.
    Inverse: :func:`repro.obs.exporters.parse_prometheus_labels`.
    """
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


_LABEL_KEY_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _label_suffix(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    for k in labels:
        if not _LABEL_KEY_RE.match(str(k)):
            raise ConfigurationError(
                f"invalid metric label name {k!r} (must match "
                "[a-zA-Z_][a-zA-Z0-9_]*)")
    inner = ",".join(f'{k}="{escape_label_value(labels[k])}"'
                     for k in sorted(labels))
    return "{" + inner + "}"


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket distribution: counts per bucket plus sum/count/min/max.

    ``buckets`` are strictly increasing upper bounds; an overflow bucket
    (+Inf) is always implied.  Percentiles are estimated by linear
    interpolation inside the containing bucket (Prometheus-style), clamped
    to the exact observed ``[min, max]`` range.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count", "min", "max")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be strictly increasing, "
                f"got {bounds}")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = overflow
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        v = float(value)
        self.sum += v
        self.count += 1
        self.min = min(self.min, v)
        self.max = max(self.max, v)
        for i, bound in enumerate(self.buckets):
            if v <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def snapshot(self) -> "HistogramSnapshot":
        return HistogramSnapshot(
            buckets=self.buckets,
            counts=tuple(self.counts),
            sum=self.sum,
            count=self.count,
            min=self.min if self.count else None,
            max=self.max if self.count else None,
        )


@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen histogram state: picklable, JSON-able, mergeable."""

    buckets: tuple[float, ...]
    counts: tuple[int, ...]
    sum: float
    count: int
    min: Optional[float]
    max: Optional[float]

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-th percentile (``q`` in [0, 100]).

        Linear interpolation inside the containing bucket; the overflow
        bucket interpolates toward the exact observed maximum.  Returns
        None for an empty histogram.
        """
        if self.count == 0:
            return None
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
        rank = (q / 100.0) * self.count
        cum = 0
        lower = 0.0
        for i, n in enumerate(self.counts):
            upper = (self.buckets[i] if i < len(self.buckets)
                     else (self.max if self.max is not None else lower))
            if n and cum + n >= rank:
                frac = (rank - cum) / n
                value = lower + frac * (upper - lower)
                return self._clamp(value)
            cum += n
            lower = upper
        return self._clamp(lower)

    def _clamp(self, value: float) -> float:
        lo = self.min if self.min is not None else value
        hi = self.max if self.max is not None else value
        return float(min(max(value, lo), hi))

    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Bucket-wise sum of two snapshots (identical bucket layout)."""
        if self.buckets != other.buckets:
            raise ConfigurationError(
                "cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}")
        mins = [m for m in (self.min, other.min) if m is not None]
        maxs = [m for m in (self.max, other.max) if m is not None]
        return HistogramSnapshot(
            buckets=self.buckets,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            sum=self.sum + other.sum,
            count=self.count + other.count,
            min=min(mins) if mins else None,
            max=max(maxs) if maxs else None,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HistogramSnapshot":
        return cls(
            buckets=tuple(float(b) for b in data["buckets"]),
            counts=tuple(int(c) for c in data["counts"]),
            sum=float(data["sum"]),
            count=int(data["count"]),
            min=None if data.get("min") is None else float(data["min"]),
            max=None if data.get("max") is None else float(data["max"]),
        )


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create; requesting an
    existing name with a different metric type is a configuration error.
    Labels become part of the full metric name
    (``name{key="value",...}``, keys sorted), so one logical metric can
    carry per-kind / per-process series.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}

    def _get(self, cls: type, name: str, labels: Mapping[str, str],
             **kwargs: Any) -> Any:
        full = name + _label_suffix({k: str(v) for k, v in labels.items()})
        metric = self._metrics.get(full)
        if metric is None:
            metric = self._metrics[full] = cls(full, **kwargs)
        elif not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {full!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}")
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        return iter(sorted(self._metrics.items()))

    def snapshot(self) -> "MetricsSnapshot":
        """Freeze every registered metric into plain data (sorted names)."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, HistogramSnapshot] = {}
        for name, metric in self:
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.snapshot()
        return MetricsSnapshot(counters=counters, gauges=gauges,
                               histograms=histograms)


@dataclass
class MetricsSnapshot:
    """Frozen registry state: the metric payload a :class:`RunResult` carries.

    Plain dicts of plain values — pickles across the multiprocessing
    pool, compares by value, serializes to JSON via :meth:`to_dict`.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSnapshot] = field(default_factory=dict)

    # -- lookups -------------------------------------------------------------

    def counter_value(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def gauge_value(self, name: str,
                    default: Optional[float] = None) -> Optional[float]:
        return self.gauges.get(name, default)

    def histogram(self, name: str) -> Optional[HistogramSnapshot]:
        return self.histograms.get(name)

    def gauges_by_prefix(self, prefix: str) -> dict[str, float]:
        """All gauges whose full name starts with ``prefix``."""
        return {k: v for k, v in self.gauges.items() if k.startswith(prefix)}

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Cross-run aggregate: counters sum, histograms merge buckets.

        Gauges are per-run point facts (e.g. convergence time) with no
        meaningful sum; campaign statistics over them are computed from
        the individual run snapshots (:mod:`repro.obs.report`), so
        ``merge`` drops them.
        """
        counters = dict(self.counters)
        for k, v in other.counters.items():
            counters[k] = counters.get(k, 0.0) + v
        histograms = dict(self.histograms)
        for k, h in other.histograms.items():
            histograms[k] = histograms[k].merge(h) if k in histograms else h
        return MetricsSnapshot(counters=counters, gauges={},
                               histograms=histograms)

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.to_dict() for k, h in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsSnapshot":
        return cls(
            counters={k: float(v) for k, v in data.get("counters", {}).items()},
            gauges={k: float(v) for k, v in data.get("gauges", {}).items()},
            histograms={
                k: HistogramSnapshot.from_dict(h)
                for k, h in data.get("histograms", {}).items()
            },
        )


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Exact ``q``-th percentile of a scalar sample (linear interpolation).

    Used for campaign-level statistics over per-run gauges (one
    convergence time per seed), where all samples are available exactly —
    unlike histogram percentiles, no bucket estimation is involved.
    """
    if not values:
        return None
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
    vs = sorted(float(v) for v in values)
    if len(vs) == 1:
        return vs[0]
    rank = (q / 100.0) * (len(vs) - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, len(vs) - 1)
    frac = rank - lo
    return vs[lo] + frac * (vs[hi] - vs[lo])
