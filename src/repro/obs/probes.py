"""Convergence probes: live detector-quality telemetry for one run.

The paper's whole argument is temporal — the extracted oracle must
*eventually* stop suspecting correct processes (and the flaw in the
original construction is a detector that wrongfully suspects infinitely
often) — so pass/fail verdicts alone cannot compare detectors.  These
probes measure *when* and *how much*:

* **wrongful suspicions** — onsets of suspicion of a still-live process
  (the oracle's "mistakes" in the paper's sense, which ◇P must keep
  finite), plus the time of the last one;
* **convergence / stabilization time** — the end of the last wrongful
  suspicion interval, overall (``oracle.converged_at``) and per owning
  process (``oracle.stabilized_at{process=...}``); a run whose wrongful
  suspicions are still open at the horizon reports
  ``oracle.wrongful_open > 0`` and *no* ``converged_at`` gauge;
* **suspicion churn** — total oracle output transitions;
* **hungry → eating latency** — per-session service latency histogram
  (``dining.hungry_to_eating``), the dining-layer cost of oracle quality;
* **witness/subject ping → ack round-trip** — ``core.ping_rtt``, the
  hand-off cost at the heart of the Alg. 1/Alg. 2 reduction.

The probe is a subscriber on the trace *record stream*
(:meth:`repro.sim.trace.Trace.subscribe`): it observes every record as it
is emitted, before any sink decides whether to retain it.  Metrics are
therefore exact under ``ring:N`` and ``counters`` sinks — they never
depend on evicted trace rows — and, being pure arithmetic over the
deterministic event stream, bit-identical between serial and parallel
campaign execution.

Crash ground truth comes from the same stream (``"crash"`` records cover
both scheduled and dynamically injected crashes), so a suspicion onset is
wrongful exactly when its target has not crashed yet at onset time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.trace import TraceRecord
    from repro.types import ProcessId, Time

#: State values mirrored from :class:`repro.types.DinerState` (string form,
#: as recorded in ``"state"`` trace rows).
_HUNGRY = "hungry"
_EATING = "eating"


class RunProbes:
    """Per-run convergence probes feeding a :class:`MetricsRegistry`.

    Subscribe :meth:`on_record` to the engine trace; call
    :meth:`finalize` once, after the run, to publish the end-of-run
    gauges (convergence and stabilization times, open-state counts).
    """

    #: The record kinds :meth:`on_record` dispatches on.  Passed as the
    #: subscription filter so the trace can elide records of other kinds
    #: entirely under non-retaining sinks.
    KINDS = frozenset({"suspect", "state", "crash", "ping", "ack"})

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._finalized = False
        # Oracle state.
        self._crashed: dict["ProcessId", "Time"] = {}
        self._suspected: dict[tuple, bool] = {}
        self._wrongful_open: dict[tuple, "Time"] = {}
        self._last_wrongful_onset: float = 0.0
        self._stabilized_at: dict["ProcessId", float] = {}
        self._converged_at: float = 0.0
        self._c_churn = registry.counter("oracle.suspicion_churn")
        self._c_wrongful = registry.counter("oracle.wrongful_suspicions")
        # Per-detector-label breakdowns: a run may host several labeled
        # suspicion streams (Ω's internal ◇P under "omega.sub", the flawed
        # extraction's substrate under "flawed.sub"), and the lattice
        # compares detectors by their *dining-facing* label only.  The
        # unlabeled aggregates above keep their historical meaning (all
        # labels summed).
        self._c_churn_by: dict[str, object] = {}
        self._c_wrongful_by: dict[str, object] = {}
        self._converged_by: dict[str, float] = {}
        # Dining state.
        self._hungry_since: dict[tuple, "Time"] = {}
        self._c_hungry = registry.counter("dining.hungry_onsets")
        self._c_sessions = registry.counter("dining.sessions")
        self._h_latency = registry.histogram("dining.hungry_to_eating")
        # Witness/subject hand-off state.
        self._ping_at: dict[tuple, "Time"] = {}
        self._c_pings = registry.counter("core.pings")
        self._c_acks = registry.counter("core.acks")
        self._h_rtt = registry.histogram("core.ping_rtt")

    # -- the stream hook -----------------------------------------------------

    def on_record(self, rec: "TraceRecord") -> None:
        kind = rec.kind
        if kind == "suspect":
            self._on_suspect(rec)
        elif kind == "state":
            self._on_state(rec)
        elif kind == "crash":
            self._on_crash(rec.pid, rec.time)
        elif kind == "ping":
            self._ping_at[(rec.pid, rec.get("component"))] = rec.time
            self._c_pings.inc()
        elif kind == "ack":
            sent = self._ping_at.pop((rec.pid, rec.get("component")), None)
            self._c_acks.inc()
            if sent is not None:
                self._h_rtt.observe(rec.time - sent)

    # -- oracle --------------------------------------------------------------

    def _label_counter(self, cache: dict, name: str, label) -> "object":
        key = str(label)
        counter = cache.get(key)
        if counter is None:
            counter = cache[key] = self.registry.counter(name, detector=key)
        return counter

    def _on_suspect(self, rec: "TraceRecord") -> None:
        owner = rec.pid
        label = rec.get("detector")
        key = (owner, rec.get("target"), label)
        suspected = bool(rec.get("suspected"))
        if not rec.get("initial"):
            self._c_churn.inc()
            self._label_counter(self._c_churn_by, "oracle.suspicion_churn",
                                label).inc()
        self._suspected[key] = suspected
        if suspected:
            # An onset is wrongful when the target has not crashed yet —
            # including the initial suspect-everyone state of the paper's
            # extracted modules (matching
            # repro.oracles.properties.false_positive_count).
            if key[1] not in self._crashed:
                self._c_wrongful.inc()
                self._label_counter(self._c_wrongful_by,
                                    "oracle.wrongful_suspicions",
                                    label).inc()
                self._last_wrongful_onset = max(self._last_wrongful_onset,
                                                rec.time)
                self._wrongful_open[key] = rec.time
        else:
            self._close_wrongful(key, rec.time)

    def _close_wrongful(self, key: tuple, t: "Time") -> None:
        if self._wrongful_open.pop(key, None) is None:
            return
        owner = key[0]
        self._stabilized_at[owner] = max(self._stabilized_at.get(owner, 0.0),
                                         float(t))
        self._converged_at = max(self._converged_at, float(t))
        label = str(key[2])
        self._converged_by[label] = max(self._converged_by.get(label, 0.0),
                                        float(t))

    def _on_crash(self, pid: "ProcessId", t: "Time") -> None:
        self._crashed[pid] = t
        # A crash ends every wrongful interval it is part of: suspecting
        # the now-crashed target becomes rightful, and a crashed owner's
        # frozen output stops counting against convergence.
        for key in [k for k in self._wrongful_open
                    if k[0] == pid or k[1] == pid]:
            self._close_wrongful(key, t)

    # -- dining --------------------------------------------------------------

    def _on_state(self, rec: "TraceRecord") -> None:
        state = rec.get("state")
        key = (rec.pid, rec.get("instance"))
        if state == _HUNGRY:
            self._hungry_since[key] = rec.time
            self._c_hungry.inc()
        elif state == _EATING:
            self._c_sessions.inc()
            since = self._hungry_since.pop(key, None)
            if since is not None:
                self._h_latency.observe(rec.time - since)

    # -- end of run ----------------------------------------------------------

    @property
    def converged(self) -> bool:
        """No wrongful suspicion currently open."""
        return not self._wrongful_open

    def convergence_time(self) -> Optional[float]:
        """End of the last wrongful-suspicion interval (0.0 when the
        oracle was never wrong); None while a wrongful suspicion is open."""
        return self._converged_at if self.converged else None

    def finalize(self, end_time: "Time") -> None:
        """Publish the end-of-run gauges.  Idempotent."""
        if self._finalized:
            return
        self._finalized = True
        reg = self.registry
        reg.gauge("oracle.wrongful_open").set(len(self._wrongful_open))
        reg.gauge("oracle.last_wrongful_onset").set(self._last_wrongful_onset)
        if self.converged:
            reg.gauge("oracle.converged_at").set(self._converged_at)
        # Per-label convergence: a label converged iff none of *its*
        # wrongful intervals are still open — the per-detector verdict the
        # lattice matrix reads even when another label in the same run
        # (e.g. a substrate) is still wrong.
        open_by: dict[str, int] = {}
        for key in self._wrongful_open:
            open_by[str(key[2])] = open_by.get(str(key[2]), 0) + 1
        labels = (set(self._c_wrongful_by) | set(self._converged_by)
                  | set(open_by))
        for label in sorted(labels):
            n_open = open_by.get(label, 0)
            reg.gauge("oracle.wrongful_open", detector=label).set(n_open)
            if n_open == 0:
                reg.gauge("oracle.converged_at", detector=label).set(
                    self._converged_by.get(label, 0.0))
        for owner in sorted(self._stabilized_at):
            reg.gauge("oracle.stabilized_at",
                      process=str(owner)).set(self._stabilized_at[owner])
        reg.gauge("dining.hungry_pending").set(len(self._hungry_since))
        reg.gauge("core.pings_outstanding").set(len(self._ping_at))
        reg.gauge("run.end_time").set(float(end_time))
