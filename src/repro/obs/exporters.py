"""Metric exporters: JSONL per-run records and Prometheus-style textfiles.

Two stable on-disk forms:

* **JSONL** — one JSON object per line, one line per run.  The CLI's
  ``--metrics-out PATH`` (``repro chaos | sweep | scenario | run``)
  appends these; ``repro report PATH`` aggregates them back into a
  campaign table.  Run records carry the flat verdict summary plus the
  full metric snapshot, so campaign files are self-contained.
* **Prometheus textfile** — the node-exporter textfile-collector format
  (``# TYPE`` headers, ``_bucket{le=...}``/``_sum``/``_count`` histogram
  series), so a run or merged campaign snapshot can be dropped into any
  Prometheus scrape pipeline.

Records are written in run order with deterministic JSON encoding
(sorted keys), so a campaign file produced with ``--workers N`` is
byte-identical to the serial one.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Union

from repro.errors import ConfigurationError
from repro.obs.registry import HistogramSnapshot, MetricsSnapshot

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.result import RunResult

PathLike = Union[str, pathlib.Path]

#: Schema tags stamped on JSONL records.
RUN_SCHEMA = "repro.run.v1"
EXPERIMENT_SCHEMA = "repro.experiment.v1"


# -- JSONL -------------------------------------------------------------------


def run_record(result: "RunResult", **extra: Any) -> dict[str, Any]:
    """The JSONL record for one executed run.

    ``extra`` key/values are attached at the top level (e.g. the chaos
    runner adds its verdict block).  ``metrics`` is None when the run was
    executed with ``obs`` disabled.
    """
    return {
        "schema": RUN_SCHEMA,
        "summary": result.summary(),
        "metrics": result.obs.to_dict() if result.obs is not None else None,
        **extra,
    }


def experiment_record(name: str, ok: bool, seconds: float) -> dict[str, Any]:
    """The JSONL record for one experiment-harness run (no run metrics)."""
    return {"schema": EXPERIMENT_SCHEMA, "name": name, "ok": bool(ok),
            "seconds": round(float(seconds), 3)}


def dumps_record(record: Mapping[str, Any]) -> str:
    """One record as a single deterministic JSON line (sorted keys)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def write_jsonl(path: PathLike, records: Iterable[Mapping[str, Any]]) -> int:
    """Write records to ``path``, one per line.  Returns the line count."""
    lines = [dumps_record(r) for r in records]
    pathlib.Path(path).write_text(
        "".join(line + "\n" for line in lines), encoding="utf-8")
    return len(lines)


def read_jsonl(path: PathLike) -> list[dict[str, Any]]:
    """Read a JSONL metrics file back into a list of record dicts."""
    p = pathlib.Path(path)
    records = []
    for i, line in enumerate(p.read_text(encoding="utf-8").splitlines()):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{p}:{i + 1}: not valid JSONL: {exc}") from exc
    return records


def record_snapshot(record: Mapping[str, Any]) -> "MetricsSnapshot | None":
    """The metric snapshot embedded in a JSONL record (None if absent)."""
    data = record.get("metrics")
    return None if data is None else MetricsSnapshot.from_dict(data)


# -- Prometheus textfile -----------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABELLED_RE = re.compile(r"^(?P<base>[^{]+)\{(?P<labels>.*)\}$")
#: One ``key="value"`` pair; the value grammar admits any character via
#: backslash escapes (the form :func:`~repro.obs.registry.escape_label_value`
#: emits), so colon/quote/backslash-bearing values round-trip.
_LABEL_PAIR_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')
_ESCAPE_RE = re.compile(r"\\(.)")


def _unescape(value: str) -> str:
    return _ESCAPE_RE.sub(
        lambda m: "\n" if m.group(1) == "n" else m.group(1), value)


def parse_prometheus_labels(labels: str) -> dict[str, str]:
    """Parse a rendered ``{k="v",...}`` label block back into a dict,
    undoing :func:`~repro.obs.registry.escape_label_value` — the
    round-trip guarantee for label values like graph specs
    (``rgg:200:0.12:7``) or quote/backslash-bearing run names.

    Raises :class:`~repro.errors.ConfigurationError` on a malformed
    block, so an invalid textfile line is caught at export time rather
    than silently shipped to a scraper.
    """
    inner = labels
    if inner.startswith("{"):
        if not inner.endswith("}"):
            raise ConfigurationError(
                f"malformed Prometheus label block: {labels!r}")
        inner = inner[1:-1]
    out: dict[str, str] = {}
    pos = 0
    while pos < len(inner):
        m = _LABEL_PAIR_RE.match(inner, pos)
        if m is None:
            raise ConfigurationError(
                f"malformed Prometheus label block at offset {pos}: "
                f"{labels!r}")
        out[m.group("key")] = _unescape(m.group("value"))
        pos = m.end()
        if pos < len(inner):
            if inner[pos] != ",":
                raise ConfigurationError(
                    f"malformed Prometheus label block at offset {pos}: "
                    f"{labels!r}")
            pos += 1
    return out


def _prom_name(name: str) -> tuple[str, str]:
    """Split a registry name into a sanitized Prometheus name + label part.

    The label part is validated (parsed and re-checked) so a registry
    name with a broken label block fails loudly here instead of
    producing an unscrapable textfile.
    """
    m = _LABELLED_RE.match(name)
    base, labels = (m.group("base"), "{" + m.group("labels") + "}") if m \
        else (name, "")
    if labels:
        parse_prometheus_labels(labels)
    return "repro_" + _NAME_RE.sub("_", base), labels


def prometheus_text(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot in the Prometheus textfile-collector format."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def header(name: str, mtype: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {mtype}")

    for name in sorted(snapshot.counters):
        pname, labels = _prom_name(name)
        header(pname, "counter")
        lines.append(f"{pname}{labels} {_fmt(snapshot.counters[name])}")
    for name in sorted(snapshot.gauges):
        pname, labels = _prom_name(name)
        header(pname, "gauge")
        lines.append(f"{pname}{labels} {_fmt(snapshot.gauges[name])}")
    for name in sorted(snapshot.histograms):
        pname, labels = _prom_name(name)
        header(pname, "histogram")
        lines.extend(_histogram_lines(pname, labels,
                                      snapshot.histograms[name]))
    return "\n".join(lines) + "\n"


def _histogram_lines(pname: str, labels: str,
                     hist: HistogramSnapshot) -> list[str]:
    inner = labels[1:-1] if labels else ""
    def with_le(le: str) -> str:
        parts = ([inner] if inner else []) + [f'le="{le}"']
        return "{" + ",".join(parts) + "}"

    out = []
    cum = 0
    for bound, n in zip(hist.buckets, hist.counts):
        cum += n
        out.append(f"{pname}_bucket{with_le(_fmt(bound))} {cum}")
    out.append(f"{pname}_bucket{with_le('+Inf')} {hist.count}")
    out.append(f"{pname}_sum{labels} {_fmt(hist.sum)}")
    out.append(f"{pname}_count{labels} {hist.count}")
    return out


def _fmt(v: float) -> str:
    return str(int(v)) if float(v).is_integer() else repr(float(v))


def write_prometheus(path: PathLike, snapshot: MetricsSnapshot) -> None:
    """Write ``snapshot`` to ``path`` as a Prometheus textfile."""
    pathlib.Path(path).write_text(prometheus_text(snapshot), encoding="utf-8")
