"""Detector-quality telemetry: metrics registry, probes, exporters, reports.

See ``docs/observability.md`` for the full tour.  The public surface:

* :class:`MetricsRegistry` / :class:`MetricsSnapshot` — collect and
  freeze per-run metrics (``repro.obs.registry``);
* :class:`RunProbes` — convergence / latency probes fed by the trace
  record stream (``repro.obs.probes``);
* :func:`run_record` / :func:`write_jsonl` / :func:`prometheus_text` —
  stable on-disk forms (``repro.obs.exporters``);
* :class:`CampaignTelemetry` — cross-seed aggregation behind
  ``repro report`` (``repro.obs.report``);
* :class:`SpanProbe` / :func:`span_records` — typed span tracing
  (suspicion intervals, dining phases, crash points, convergence
  markers) with the ``repro.span.v1`` export behind ``--spans-out``
  and ``repro timeline`` (``repro.obs.spans`` / ``repro.obs.timeline``).
"""

from repro.obs.exporters import (
    EXPERIMENT_SCHEMA,
    RUN_SCHEMA,
    dumps_record,
    experiment_record,
    parse_prometheus_labels,
    prometheus_text,
    read_jsonl,
    record_snapshot,
    run_record,
    write_jsonl,
    write_prometheus,
)
from repro.obs.probes import RunProbes
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    escape_label_value,
    percentile,
)
from repro.obs.report import CampaignTelemetry
from repro.obs.spans import SPAN_SCHEMA, Span, SpanProbe, span_records

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_BUCKETS",
    "percentile",
    "RunProbes",
    "CampaignTelemetry",
    "RUN_SCHEMA",
    "EXPERIMENT_SCHEMA",
    "SPAN_SCHEMA",
    "Span",
    "SpanProbe",
    "span_records",
    "run_record",
    "experiment_record",
    "dumps_record",
    "write_jsonl",
    "read_jsonl",
    "record_snapshot",
    "escape_label_value",
    "parse_prometheus_labels",
    "prometheus_text",
    "write_prometheus",
]
