"""Detector-quality telemetry: metrics registry, probes, exporters, reports.

See ``docs/observability.md`` for the full tour.  The public surface:

* :class:`MetricsRegistry` / :class:`MetricsSnapshot` — collect and
  freeze per-run metrics (``repro.obs.registry``);
* :class:`RunProbes` — convergence / latency probes fed by the trace
  record stream (``repro.obs.probes``);
* :func:`run_record` / :func:`write_jsonl` / :func:`prometheus_text` —
  stable on-disk forms (``repro.obs.exporters``);
* :class:`CampaignTelemetry` — cross-seed aggregation behind
  ``repro report`` (``repro.obs.report``).
"""

from repro.obs.exporters import (
    EXPERIMENT_SCHEMA,
    RUN_SCHEMA,
    dumps_record,
    experiment_record,
    prometheus_text,
    read_jsonl,
    record_snapshot,
    run_record,
    write_jsonl,
    write_prometheus,
)
from repro.obs.probes import RunProbes
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    percentile,
)
from repro.obs.report import CampaignTelemetry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_BUCKETS",
    "percentile",
    "RunProbes",
    "CampaignTelemetry",
    "RUN_SCHEMA",
    "EXPERIMENT_SCHEMA",
    "run_record",
    "experiment_record",
    "dumps_record",
    "write_jsonl",
    "read_jsonl",
    "record_snapshot",
    "prometheus_text",
    "write_prometheus",
]
