"""Span-level run tracing: typed intervals materialized from the trace stream.

Scalar metrics (:mod:`repro.obs.probes`) answer *how much*; spans answer
*when*.  The paper's refutation is interval-shaped — the flawed
extraction wrongfully suspects infinitely often while the corrected ◇P
construction's mistakes are finite — so the interesting evidence is the
interval structure itself: when each pair's suspicion opened and closed,
when each dining instance was hungry vs. eating, and where convergence
landed.  :class:`SpanProbe` materializes exactly that.

Span kinds
----------

``suspicion``
    One maximal interval during which ``pid`` suspected ``target``
    (per ``detector``).  Tagged ``wrongful`` when the target had not
    crashed at onset — the oracle's "mistakes" in the paper's sense.
    A target crash *splits* an open wrongful interval: the wrongful
    span closes at the crash and a justified (``wrongful=False``) span
    opens from it, mirroring the accounting in
    :class:`~repro.obs.probes.RunProbes`.
``phase``
    One dining phase interval (``thinking`` / ``hungry`` / ``eating``)
    of ``pid`` in dining ``instance``, from ``"state"`` trace rows.
``crash``
    A zero-length span marking a process crash.
``convergence``
    A zero-length run-global span (``pid="*"``) at the end of the last
    wrongful-suspicion interval — present only when the run converged
    (no wrongful suspicion still open at the horizon).

Truncation semantics
--------------------

A span still open when the run ends is closed at the horizon with
``truncated=True``: its ``end`` is the horizon, not an observed close.
A run that never converged therefore exports truncated wrongful
suspicion spans and *no* ``convergence`` span.

Like :class:`~repro.obs.probes.RunProbes`, the probe subscribes to the
trace *record stream* (:meth:`repro.sim.trace.Trace.subscribe`) ahead of
sink retention, so spans are exact under ``ring:N`` and ``counters``
sinks and — being pure arithmetic over the deterministic event stream —
bit-identical between serial and parallel campaign execution.

The stable on-disk form is the ``repro.span.v1`` JSONL record
(:func:`span_records` + :func:`repro.obs.exporters.write_jsonl`); see
docs/observability.md for the schema and ``repro timeline`` for the
renderer that consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.trace import TraceRecord
    from repro.types import ProcessId, Time

#: Schema tag stamped on every span JSONL record.
SPAN_SCHEMA = "repro.span.v1"

#: Deterministic ordering of span kinds at equal (start, end).
_KIND_ORDER = {"suspicion": 0, "phase": 1, "crash": 2, "convergence": 3}


@dataclass(frozen=True)
class Span:
    """One typed interval of a run.  Plain data: pickles and JSONs."""

    kind: str
    start: float
    end: float
    pid: str
    #: Suspicion spans only: suspected process / detector name / whether
    #: the onset was a mistake (target still live at onset).
    target: Optional[str] = None
    detector: Optional[str] = None
    wrongful: Optional[bool] = None
    #: Phase spans only: dining instance and phase name.
    instance: Optional[str] = None
    phase: Optional[str] = None
    #: True when the span was still open at the end of the run and was
    #: closed at the horizon rather than by an observed transition.
    truncated: bool = False

    def to_dict(self) -> dict[str, Any]:
        """Every field, fixed key set — the ``span`` block of the JSONL
        record (absent facts are explicit ``None``s, so consumers never
        need key-existence checks)."""
        return {
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "pid": self.pid,
            "target": self.target,
            "detector": self.detector,
            "wrongful": self.wrongful,
            "instance": self.instance,
            "phase": self.phase,
            "truncated": self.truncated,
        }


#: Field order of the internal row tuples (matches :meth:`Span.to_dict`).
#: The probe accumulates plain tuples on the hot path — constructing a
#: frozen dataclass per trace record is measurable at campaign rates —
#: and converts to dicts once, at :meth:`SpanProbe.finalize`.
_KEYS = ("kind", "start", "end", "pid", "target", "detector", "wrongful",
         "instance", "phase", "truncated")


def _sort_key(row: tuple) -> tuple:
    # (start, end, kind order, pid, target, detector, instance, phase)
    return (row[1], row[2], _KIND_ORDER.get(row[0], 9), str(row[3]),
            str(row[4] or ""), str(row[5] or ""),
            str(row[7] or ""), str(row[8] or ""))


class SpanProbe:
    """Materialize typed spans from the trace record stream.

    Subscribe :meth:`on_record` to the engine trace (the builder does
    this when ``RunSpec.spans`` is on); call :meth:`finalize` once after
    the run to close still-open spans at the horizon and obtain the
    deterministic span list (plain dicts, sorted by start time).
    """

    #: Record kinds :meth:`on_record` dispatches on — the subscription
    #: filter, so unrelated kinds can still be elided by the lazy trace
    #: fast path under non-retaining sinks.
    KINDS = frozenset({"suspect", "state", "crash"})

    def __init__(self) -> None:
        self._spans: list[tuple] = []  # rows in _KEYS order
        self._crashed: dict["ProcessId", "Time"] = {}
        #: (owner, target, detector) -> (start, wrongful) of the open
        #: suspicion interval.
        self._susp_open: dict[tuple, tuple[float, bool]] = {}
        #: (pid, instance) -> (start, phase) of the open dining phase.
        self._phase_open: dict[tuple, tuple[float, str]] = {}
        self._converged_at: float = 0.0
        self._finalized: Optional[list[dict[str, Any]]] = None

    # -- the stream hook -----------------------------------------------------

    def on_record(self, rec: "TraceRecord") -> None:
        kind = rec.kind
        if kind == "suspect":
            self._on_suspect(rec)
        elif kind == "state":
            self._on_state(rec)
        elif kind == "crash":
            self._on_crash(rec.pid, rec.time)

    def _on_suspect(self, rec: "TraceRecord") -> None:
        data = rec.data
        key = (rec.pid, data.get("target"), data.get("detector"))
        if data.get("suspected"):
            if key not in self._susp_open:
                # Wrongful exactly when the target has not crashed yet at
                # onset (matching RunProbes / false_positive_count).
                self._susp_open[key] = (rec.time, key[1] not in self._crashed)
        else:
            self._close_suspicion(key, rec.time)

    def _close_suspicion(self, key: tuple, t: float,
                         truncated: bool = False) -> None:
        opened = self._susp_open.pop(key, None)
        if opened is None:
            return
        start, wrongful = opened
        if wrongful and not truncated:
            self._converged_at = max(self._converged_at, float(t))
        self._spans.append(("suspicion", start, float(t), key[0],
                            key[1], key[2], wrongful, None, None, truncated))

    def _on_crash(self, pid: "ProcessId", t: "Time") -> None:
        self._crashed[pid] = t
        self._spans.append(("crash", float(t), float(t), pid,
                            None, None, None, None, None, False))
        # A crash ends every suspicion interval it is part of: suspecting
        # the now-crashed target becomes rightful (the wrongful span ends
        # and a justified continuation opens), and a crashed owner's
        # frozen output stops producing intervals.
        for key in [k for k in self._susp_open if k[0] == pid or k[1] == pid]:
            self._close_suspicion(key, t)
            if key[1] == pid and key[0] not in self._crashed:
                self._susp_open[key] = (float(t), False)
        for pkey in [k for k in self._phase_open if k[0] == pid]:
            start, phase = self._phase_open.pop(pkey)
            self._spans.append(("phase", start, float(t), pid,
                                None, None, None, pkey[1], phase, False))

    def _on_state(self, rec: "TraceRecord") -> None:
        data = rec.data
        key = (rec.pid, data.get("instance"))
        opened = self._phase_open.pop(key, None)
        if opened is not None:
            self._spans.append(("phase", opened[0], rec.time, rec.pid,
                                None, None, None, key[1], opened[1], False))
        state = data.get("state")
        if state is not None:
            self._phase_open[key] = (rec.time, str(state))

    # -- end of run ----------------------------------------------------------

    @property
    def converged(self) -> bool:
        """No wrongful suspicion currently open."""
        return not any(w for _, w in self._susp_open.values())

    def convergence_time(self) -> Optional[float]:
        """End of the last wrongful-suspicion interval (0.0 when the
        oracle was never wrong); None while a wrongful suspicion is open."""
        return self._converged_at if self.converged else None

    def finalize(self, end_time: "Time") -> list[dict[str, Any]]:
        """Close still-open spans at the horizon (``truncated=True``) and
        return the run's spans as plain dicts, sorted by start time.
        Idempotent: later calls return the same list."""
        if self._finalized is not None:
            return self._finalized
        converged = self.converged
        for key in list(self._susp_open):
            self._close_suspicion(key, end_time, truncated=True)
        for pkey, (start, phase) in sorted(self._phase_open.items(),
                                           key=lambda kv: str(kv[0])):
            self._spans.append(("phase", start, float(end_time), pkey[0],
                                None, None, None, pkey[1], phase, True))
        self._phase_open.clear()
        if converged:
            self._spans.append(("convergence", self._converged_at,
                                self._converged_at, "*",
                                None, None, None, None, None, False))
        self._spans.sort(key=_sort_key)
        self._finalized = [dict(zip(_KEYS, row)) for row in self._spans]
        return self._finalized


def span_records(name: str, seed: int, end_time: float,
                 spans: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """The ``repro.span.v1`` JSONL records for one run's spans.

    Each record carries the run context (name, seed, horizon) so a file
    can hold many runs (a whole campaign) and still be sliced per run by
    the timeline renderer.  Serialize with
    :func:`repro.obs.exporters.dumps_record` /
    :func:`~repro.obs.exporters.write_jsonl` — records are emitted in
    run order with sorted keys, so campaign span files are byte-identical
    between ``--workers N`` and serial execution.
    """
    run = {"name": name, "seed": int(seed), "end_time": float(end_time)}
    return [{"schema": SPAN_SCHEMA, "run": dict(run), "span": dict(span)}
            for span in spans]
