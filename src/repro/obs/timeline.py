"""Aggregate ``repro.span.v1`` files into Gantt charts and convergence curves.

The consumers of :mod:`repro.obs.spans` exports: load one or more span
JSONL files (single runs or whole campaigns), slice out one run's spans
for a per-pair suspicion Gantt chart (wrongful vs. justified styling,
dining-phase lanes, crash ticks, convergence marker), and fold *all*
runs into a cross-seed convergence CDF.  Rendering goes through the
dependency-free :func:`repro.analysis.svg.render_svg_timeline` and
:func:`repro.analysis.sessions.render_ascii_timeline`; both outputs are
pure functions of the record list, so for a given spec+seed they are
byte-identical regardless of ``--workers`` or resume history.

``repro timeline`` (the CLI front end) prints the ASCII form and writes
the SVG with ``--svg-out``; see docs/observability.md.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.exporters import read_jsonl
from repro.obs.spans import SPAN_SCHEMA

#: Span-kind fills for the SVG Gantt lanes.
KIND_COLORS = {
    "wrongful": "#c0392b",   # oracle mistakes: the paper's refutation lives here
    "justified": "#95a5a6",  # suspicion of an actually-crashed process
    "hungry": "#e0a030",
    "eating": "#4878a8",
}

#: Span-kind glyphs for the ASCII Gantt (order = precedence per bin).
ASCII_GLYPHS = {
    "wrongful": "█",
    "justified": "▒",
    "eating": "▓",
    "hungry": "░",
}

#: Eighth-block ramp for the ASCII CDF row.
_BLOCKS = " ▁▂▃▄▅▆▇█"


# -- loading and slicing ------------------------------------------------------


def load_span_records(paths: Iterable[Any]) -> list[dict[str, Any]]:
    """All ``repro.span.v1`` records across ``paths``, in file order.
    Records with other schemas (e.g. a mixed metrics file) are skipped."""
    records: list[dict[str, Any]] = []
    for path in paths:
        records.extend(rec for rec in read_jsonl(path)
                       if rec.get("schema") == SPAN_SCHEMA)
    return records


def runs_in(records: Sequence[Mapping[str, Any]]) -> list[tuple[str, int]]:
    """Distinct ``(name, seed)`` runs, in first-appearance order."""
    seen: list[tuple[str, int]] = []
    for rec in records:
        run = rec.get("run") or {}
        key = (run.get("name"), run.get("seed"))
        if key not in seen:
            seen.append(key)
    return seen


def select_run(records: Sequence[Mapping[str, Any]],
               seed: Optional[int] = None) -> tuple[str, int]:
    """The run the Gantt chart should show: the ``--seed`` match, or the
    first run in the file when no seed is given."""
    runs = runs_in(records)
    if not runs:
        raise ConfigurationError(
            f"no {SPAN_SCHEMA} records found — export spans with "
            "--spans-out on repro scenario/sweep/chaos")
    if seed is None:
        return runs[0]
    for run in runs:
        if run[1] == seed:
            return run
    raise ConfigurationError(
        f"no run with seed {seed}; available seeds: "
        f"{sorted(r[1] for r in runs)}")


def run_spans(records: Sequence[Mapping[str, Any]], name: str,
              seed: int) -> tuple[list[dict[str, Any]], float]:
    """One run's span dicts (record order) plus its horizon."""
    spans: list[dict[str, Any]] = []
    end_time = 0.0
    for rec in records:
        run = rec.get("run") or {}
        if run.get("name") == name and run.get("seed") == seed:
            spans.append(dict(rec.get("span") or {}))
            end_time = max(end_time, float(run.get("end_time") or 0.0))
    return spans, end_time


# -- track extraction ---------------------------------------------------------


def suspicion_tracks(
        spans: Sequence[Mapping[str, Any]]) -> dict[str, list[tuple]]:
    """Per-pair lanes ``"p→q"`` of ``(start, end, wrongful|justified)``."""
    tracks: dict[str, list[tuple]] = {}
    for s in spans:
        if s.get("kind") != "suspicion":
            continue
        label = f"{s['pid']}→{s['target']}"
        style = "wrongful" if s.get("wrongful") else "justified"
        tracks.setdefault(label, []).append(
            (float(s["start"]), float(s["end"]), style))
    return {k: sorted(v) for k, v in sorted(tracks.items())}


def phase_tracks(spans: Sequence[Mapping[str, Any]],
                 include: Sequence[str] = ("hungry", "eating"),
                 ) -> dict[str, list[tuple]]:
    """Per-process dining lanes of ``(start, end, phase)``.  Thinking is
    omitted by default — it is the unmarked background of a lane."""
    tracks: dict[str, list[tuple]] = {}
    for s in spans:
        if s.get("kind") != "phase" or s.get("phase") not in include:
            continue
        label = f"{s['pid']} dining"
        tracks.setdefault(label, []).append(
            (float(s["start"]), float(s["end"]), str(s["phase"])))
    return {k: sorted(v) for k, v in sorted(tracks.items())}


def crash_times(spans: Sequence[Mapping[str, Any]]) -> dict[str, float]:
    return {str(s["pid"]): float(s["start"]) for s in spans
            if s.get("kind") == "crash"}


def convergence_marker(
        spans: Sequence[Mapping[str, Any]]) -> Optional[float]:
    """The run's convergence point, or None when it never converged."""
    for s in spans:
        if s.get("kind") == "convergence":
            return float(s["start"])
    return None


def convergence_curve(
    records: Sequence[Mapping[str, Any]],
) -> tuple[list[tuple[float, float]], int, int]:
    """Cross-seed convergence CDF over every run in ``records``.

    Returns ``(points, converged, total)`` where ``points`` is the step
    series ``[(t, fraction of all runs converged by t), ...]``.  Runs
    without a convergence span count in the denominator but never in the
    curve, so an unconverged campaign visibly plateaus below 1.0.
    """
    per_run: dict[tuple[str, int], Optional[float]] = {}
    for rec in records:
        run = rec.get("run") or {}
        key = (run.get("name"), run.get("seed"))
        per_run.setdefault(key, None)
        span = rec.get("span") or {}
        if span.get("kind") == "convergence":
            per_run[key] = float(span["start"])
    total = len(per_run)
    times = sorted(t for t in per_run.values() if t is not None)
    points = [(t, (i + 1) / total) for i, t in enumerate(times)]
    return points, len(times), total


# -- rendering ----------------------------------------------------------------


def _window(spans: Sequence[Mapping[str, Any]], end_time: float) -> float:
    t1 = max([end_time] + [float(s.get("end") or 0.0) for s in spans])
    if t1 <= 0.0:
        raise ConfigurationError("span records cover an empty time window")
    return t1


def render_timeline_svg(records: Sequence[Mapping[str, Any]],
                        seed: Optional[int] = None,
                        width: int = 900) -> str:
    """The full SVG timeline: one run's suspicion/dining Gantt lanes plus
    the cross-seed convergence CDF of every run in ``records``."""
    from repro.analysis.svg import render_svg_timeline

    name, seed = select_run(records, seed)
    spans, end_time = run_spans(records, name, seed)
    t1 = _window(spans, end_time)
    tracks = {**suspicion_tracks(spans), **phase_tracks(spans)}
    points, converged, total = convergence_curve(records)
    return render_svg_timeline(
        tracks, 0.0, t1, width=width,
        title=f"{name} seed {seed} — suspicion & dining spans",
        marker=convergence_marker(spans), marker_label="converged",
        kind_colors=KIND_COLORS,
        cdf=points,
        cdf_label=f"convergence CDF ({converged}/{total})",
    )


def _ascii_cdf_row(points: Sequence[tuple[float, float]], t1: float,
                   width: int) -> str:
    cells = []
    for c in range(width):
        hi = t1 * (c + 1) / width
        frac = 0.0
        for t, f in points:
            if t <= hi:
                frac = f
            else:
                break
        cells.append(_BLOCKS[min(int(frac * (len(_BLOCKS) - 1) + 1e-9),
                                 len(_BLOCKS) - 1)])
    return "".join(cells)


def render_timeline_ascii(records: Sequence[Mapping[str, Any]],
                          seed: Optional[int] = None,
                          width: int = 88) -> str:
    """The terminal timeline: header, styled Gantt lanes, crash ticks,
    cross-seed CDF row, and a one-line legend."""
    from repro.analysis.sessions import render_ascii_timeline

    name, seed = select_run(records, seed)
    spans, end_time = run_spans(records, name, seed)
    t1 = _window(spans, end_time)
    tracks = {**suspicion_tracks(spans), **phase_tracks(spans)}
    lines = [f"timeline: {name} seed {seed} (t in [0, {t1:g}])"]
    if tracks:
        lines.append(render_ascii_timeline(tracks, 0.0, t1, width=width,
                                           glyphs=ASCII_GLYPHS))
        lines.append("legend: █ wrongful  ▒ justified  ▓ eating  ░ hungry")
    else:
        lines.append("(no suspicion or dining spans in this run)")
    crashes = crash_times(spans)
    if crashes:
        lines.append("crashes: " + ", ".join(
            f"{pid}@{t:g}" for pid, t in sorted(crashes.items())))
    marker = convergence_marker(spans)
    lines.append("converged at " + (f"{marker:g}" if marker is not None
                                    else "— (never)"))
    points, converged, total = convergence_curve(records)
    lines.append(f"cross-seed convergence CDF ({converged}/{total} runs):")
    lines.append(f"CDF |{_ascii_cdf_row(points, t1, width)}|")
    return "\n".join(lines)
