"""Campaign-level telemetry: aggregate per-run metrics across seeds.

A campaign (chaos run, seed sweep) produces one metric snapshot per run.
:class:`CampaignTelemetry` folds them into detector-quality statistics in
the style of solvability-based oracle comparison:

* **convergence time** — p50 / p95 / max of per-run ◇P convergence
  (end of the last wrongful-suspicion interval), plus how many runs
  never converged;
* **wrongful suspicions / churn** — totals and per-run maxima;
* **service latency** — hungry→eating histograms *merged bucket-wise*
  across seeds, percentiles estimated from the merged distribution
  (likewise the witness/subject ping→ack round-trip);
* **message costs** — summed send/drop/duplicate/retransmit counters.

Inputs are either live :class:`~repro.runtime.result.RunResult`s (the
chaos runner aggregates in-process) or JSONL records read back from a
``--metrics-out`` file (``repro report``); both produce identical
numbers, since records embed the same snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Optional, Sequence

from repro.obs.exporters import record_snapshot, run_record
from repro.obs.registry import (
    HistogramSnapshot,
    MetricsSnapshot,
    percentile,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.result import RunResult

#: Counter totals surfaced in the campaign message-cost block.
_COST_COUNTERS = (
    ("sent", "net.messages_sent"),
    ("delivered", "net.messages_delivered"),
    ("dropped", "net.messages_dropped"),
    ("duplicated", "net.messages_duplicated"),
    ("retransmissions", "transport.retransmissions"),
)

#: Histograms merged bucket-wise across runs.
_MERGED_HISTOGRAMS = ("dining.hungry_to_eating", "core.ping_rtt")

#: Monitoring-cost counters (published at build time by the runtime
#: builder): how many ordered (witness, subject) pairs the detectors
#: monitor, and how many dining instances run — the numbers that make
#: sparse (``pairs=neighbors``) vs full-square campaign cost visible.
_MONITOR_COUNTERS = (
    ("pairs_monitored", "monitor.pairs_monitored"),
    ("dining_instances", "dining.instances"),
)


@dataclass
class CampaignTelemetry:
    """Aggregated detector-quality statistics for one campaign."""

    runs: int = 0
    with_metrics: int = 0
    ok_runs: int = 0
    #: Records skipped because they carry no usable metric snapshot
    #: (``metrics: null`` from obs-disabled runs, or a malformed block):
    #: they still count in ``runs``/``ok_runs``, but contribute nothing
    #: to the statistics — ``repro report`` warns with this count.
    skipped_no_metrics: int = 0
    #: Per-run ◇P convergence times; None = that run never converged.
    convergence_times: list[Optional[float]] = field(default_factory=list)
    wrongful: list[int] = field(default_factory=list)
    churn: list[int] = field(default_factory=list)
    merged: dict[str, HistogramSnapshot] = field(default_factory=dict)
    totals: dict[str, float] = field(default_factory=dict)
    monitor_totals: dict[str, float] = field(default_factory=dict)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_results(cls, results: Sequence["RunResult"]) -> "CampaignTelemetry":
        return cls.from_records([run_record(r) for r in results])

    @classmethod
    def from_records(cls,
                     records: Sequence[Mapping[str, Any]]) -> "CampaignTelemetry":
        tele = cls()
        for record in records:
            tele._add(record)
        return tele

    def _add(self, record: Mapping[str, Any]) -> None:
        self.runs += 1
        summary = record.get("summary") or {}
        if summary.get("ok") or record.get("ok"):
            self.ok_runs += 1
        # A record without a snapshot (obs-disabled run: metrics is null)
        # or with an unreadable one must not fail the whole campaign
        # aggregation — skip it, count it, keep going.
        try:
            snap = record_snapshot(record)
        except (KeyError, TypeError, ValueError, AttributeError):
            snap = None
        if snap is None:
            self.skipped_no_metrics += 1
            return
        self.with_metrics += 1
        self.convergence_times.append(snap.gauge_value("oracle.converged_at"))
        self.wrongful.append(
            int(snap.counter_value("oracle.wrongful_suspicions")))
        self.churn.append(int(snap.counter_value("oracle.suspicion_churn")))
        for name in _MERGED_HISTOGRAMS:
            h = snap.histogram(name)
            if h is None:
                continue
            have = self.merged.get(name)
            self.merged[name] = h if have is None else have.merge(h)
        for label, counter in _COST_COUNTERS:
            self.totals[label] = (self.totals.get(label, 0.0)
                                  + snap.counter_value(counter))
        for label, counter in _MONITOR_COUNTERS:
            self.monitor_totals[label] = (self.monitor_totals.get(label, 0.0)
                                          + snap.counter_value(counter))

    # -- statistics ----------------------------------------------------------

    @property
    def converged_times(self) -> list[float]:
        return [t for t in self.convergence_times if t is not None]

    @property
    def unconverged(self) -> int:
        return sum(1 for t in self.convergence_times if t is None)

    def convergence_stats(self) -> dict[str, Any]:
        times = self.converged_times
        return {
            "p50": percentile(times, 50.0),
            "p95": percentile(times, 95.0),
            "max": max(times) if times else None,
            "unconverged": self.unconverged,
        }

    def histogram_stats(self, name: str) -> Optional[dict[str, Any]]:
        h = self.merged.get(name)
        if h is None or h.count == 0:
            return None
        return {
            "count": h.count,
            "p50": h.percentile(50.0),
            "p95": h.percentile(95.0),
            "max": h.max,
        }

    def summary(self) -> dict[str, Any]:
        """Flat JSON-safe campaign digest (the ``repro report --json`` body)."""
        return {
            "runs": self.runs,
            "ok": self.ok_runs,
            "with_metrics": self.with_metrics,
            "skipped_no_metrics": self.skipped_no_metrics,
            "convergence_time": self.convergence_stats(),
            "wrongful_suspicions": {
                "total": sum(self.wrongful),
                "max": max(self.wrongful, default=0),
            },
            "suspicion_churn": {
                "total": sum(self.churn),
                "max": max(self.churn, default=0),
            },
            "hungry_to_eating": self.histogram_stats("dining.hungry_to_eating"),
            "ping_rtt": self.histogram_stats("core.ping_rtt"),
            "messages": {k: int(v) for k, v in sorted(self.totals.items())},
            "monitoring": {k: int(v)
                           for k, v in sorted(self.monitor_totals.items())},
        }

    def merged_snapshot(self) -> MetricsSnapshot:
        """Campaign-wide snapshot: summed counters + merged histograms,
        with convergence statistics as synthetic gauges (Prometheus export)."""
        snap = MetricsSnapshot(
            counters={
                "net.messages_" + k if k in
                ("sent", "delivered", "dropped", "duplicated")
                else "transport." + k: v
                for k, v in self.totals.items()
            },
            histograms=dict(self.merged),
        )
        for label, counter in _MONITOR_COUNTERS:
            if label in self.monitor_totals:
                snap.counters[counter] = self.monitor_totals[label]
        stats = self.convergence_stats()
        for key in ("p50", "p95", "max"):
            if stats[key] is not None:
                snap.gauges[f"campaign.convergence_time_{key}"] = stats[key]
        snap.gauges["campaign.unconverged_runs"] = float(stats["unconverged"])
        snap.gauges["campaign.runs"] = float(self.runs)
        return snap

    # -- rendering -----------------------------------------------------------

    def render(self, title: str = "campaign telemetry") -> str:
        # Imported here: repro.analysis pulls in the core/dining stack,
        # which imports the engine, which imports repro.obs — a cycle if
        # resolved at module import time.
        from repro.analysis.report import Table

        def fmt(v: Optional[float]) -> Any:
            return None if v is None else round(float(v), 2)

        conv = self.convergence_stats()
        t = Table(["metric", "value"], title=title)
        t.add_row(["runs (ok / with metrics)",
                   f"{self.runs} ({self.ok_runs} / {self.with_metrics})"])
        t.add_row(["convergence time p50", fmt(conv["p50"])])
        t.add_row(["convergence time p95", fmt(conv["p95"])])
        t.add_row(["convergence time max", fmt(conv["max"])])
        t.add_row(["runs never converged", conv["unconverged"]])
        t.add_row(["wrongful suspicions (total / worst run)",
                   f"{sum(self.wrongful)} / {max(self.wrongful, default=0)}"])
        t.add_row(["suspicion churn (total)", sum(self.churn)])
        for label, name in (("hungry→eating", "dining.hungry_to_eating"),
                            ("ping→ack rtt", "core.ping_rtt")):
            st = self.histogram_stats(name)
            if st is None:
                t.add_row([f"{label} latency", None])
            else:
                t.add_row(
                    [f"{label} latency p50/p95/max (n)",
                     f"{fmt(st['p50'])}/{fmt(st['p95'])}/{fmt(st['max'])} "
                     f"({st['count']})"])
        for k, v in sorted(self.totals.items()):
            t.add_row([f"messages {k}", int(v)])
        for k, v in sorted(self.monitor_totals.items()):
            t.add_row([k.replace("_", " "), int(v)])
        return t.render()
